#include "sched/fuzz.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "check/hazard.hpp"
#include "common/rng.hpp"
#include "sass/builder.hpp"
#include "sass/diag.hpp"
#include "sched/schedule.hpp"

namespace tc::sched {
namespace {

using sass::CmpOp;
using sass::MemWidth;
using sass::Pred;
using sass::Reg;

// Same fixed register map as check/fuzz.cpp: infrastructure registers are
// written once in the prologue and never touched by random body ops, and
// every thread stays inside its own 32-byte slot per memory space, so the
// generated programs are race-free regardless of warp count or scheduling.
constexpr Reg kInBase{2};    // param 0: base of the read-only input buffer
constexpr Reg kOutBase{3};   // param 1: base of the per-thread output slots
constexpr Reg kTid{4};       // S2R TID.X
constexpr Reg kInSlot{5};    // kInBase  + tid * kSlotBytes
constexpr Reg kOutSlot{6};   // kOutBase + tid * kSlotBytes
constexpr Reg kSmSlot{7};    // tid * kSlotBytes (shared-memory byte address)
constexpr int kPoolLo = 8;   // R8..R31: the random value pool
constexpr int kPoolHi = 31;
constexpr Reg kCounter{32};  // loop trip counter
constexpr Reg kScratch{33};  // prologue scratch (tid * kSlotBytes)
constexpr Pred kLanePred{0};  // lane-varying predicate for guarded ops
constexpr Pred kLoopPred{1};  // loop-exit predicate (warp-uniform)

constexpr int kSlotBytes = 32;

/// Generates one virtual program: the check/fuzz.cpp instruction mix with
/// every scheduling decision left to tc::sched. The builder runs in
/// unscheduled mode, so an accidental .stall()/.wait() here would throw.
class VirtualGenerator {
 public:
  VirtualGenerator(std::uint64_t seed, const SchedFuzzOptions& opts)
      : rng_(seed ^ 0x9E6C63D0876A9A47ull),
        opts_(opts),
        b_("sched_fuzz_" + std::to_string(seed), /*unscheduled=*/true) {}

  check::FuzzCase build(std::uint64_t seed) {
    static constexpr std::array<int, 5> kWarpChoices = {1, 1, 2, 2, 4};
    warps_ = opts_.allow_multi_warp
                 ? kWarpChoices[static_cast<std::size_t>(rng_.next_below(5))]
                 : 1;
    threads_ = warps_ * 32;
    use_smem_ = rng_.next_below(4) != 0;
    const bool use_loop = opts_.allow_loops && rng_.next_below(2) == 0;

    b_.threads(static_cast<std::uint32_t>(threads_));
    if (use_smem_) {
      b_.smem(static_cast<std::uint32_t>(threads_ * kSlotBytes));
    }

    prologue();

    const int total =
        static_cast<int>(rng_.next_int(4, std::max(4, opts_.max_body_ops)));
    if (use_loop) {
      const int pre = total / 3;
      const int body = std::max(1, total / 3);
      const int post = std::max(0, total - pre - body);
      for (int i = 0; i < pre; ++i) body_op();
      b_.mov_imm(kCounter, static_cast<std::int32_t>(rng_.next_int(2, 4)));
      b_.label("top");
      for (int i = 0; i < body; ++i) body_op();
      b_.iadd_imm(kCounter, kCounter, -1);
      b_.isetp_imm(kLoopPred, CmpOp::kGt, kCounter, 0);
      b_.bra("top").pred(kLoopPred);
      for (int i = 0; i < post; ++i) body_op();
    } else {
      for (int i = 0; i < total; ++i) body_op();
    }

    epilogue();

    check::FuzzCase c;
    c.seed = seed;
    c.prog = b_.finalize();
    c.in_bytes = static_cast<std::uint32_t>(threads_ * kSlotBytes);
    c.out_bytes = c.in_bytes;
    c.in_data.resize(c.in_bytes);
    for (auto& byte : c.in_data) {
      byte = static_cast<std::uint8_t>(rng_.next_below(256));
    }
    return c;
  }

 private:
  // --- random picks --------------------------------------------------------
  Reg pick_reg() {
    return Reg{static_cast<std::uint8_t>(rng_.next_int(kPoolLo, kPoolHi))};
  }
  Reg pick_pair() {  // even register in [8, 30]
    return Reg{static_cast<std::uint8_t>(kPoolLo + 2 * rng_.next_below(12))};
  }
  Reg pick_quad() {  // quad-aligned register in {8, 12, ..., 28}
    return Reg{static_cast<std::uint8_t>(kPoolLo + 4 * rng_.next_below(6))};
  }
  Reg pick_for_width(int n) {
    return n == 1 ? pick_reg() : n == 2 ? pick_pair() : pick_quad();
  }
  MemWidth pick_width() {
    switch (rng_.next_below(3)) {
      case 0: return MemWidth::k32;
      case 1: return MemWidth::k64;
      default: return MemWidth::k128;
    }
  }
  std::int32_t pick_offset(MemWidth w) {
    const int bytes = sass::width_bytes(w);
    return static_cast<std::int32_t>(
        bytes * rng_.next_below(static_cast<std::uint64_t>(kSlotBytes / bytes)));
  }

  void maybe_pred() {
    if (rng_.next_below(100) < 30) {
      b_.pred(kLanePred, rng_.next_below(2) == 0);
    }
  }

  // --- prologue / epilogue -------------------------------------------------
  void prologue() {
    b_.mov_param(kInBase, 0);
    b_.mov_param(kOutBase, 1);
    b_.s2r(kTid, sass::SpecialReg::kTidX);
    b_.shl(kScratch, kTid, 5);  // tid * kSlotBytes
    b_.iadd3(kInSlot, kInBase, kScratch);
    b_.iadd3(kOutSlot, kOutBase, kScratch);
    b_.mov(kSmSlot, kScratch);
    b_.isetp_imm(kLanePred, CmpOp::kLt, kTid,
                 static_cast<std::int32_t>(rng_.next_int(1, threads_ - 1)));
    for (int r = kPoolLo; r <= kPoolHi; ++r) {
      b_.mov_imm(Reg{static_cast<std::uint8_t>(r)},
                 static_cast<std::int32_t>(
                     static_cast<std::uint32_t>(rng_.next_u64())));
    }
  }

  void epilogue() {
    const int stores = static_cast<int>(rng_.next_int(1, 3));
    for (int i = 0; i < stores; ++i) {
      const MemWidth w = pick_width();
      const Reg src = pick_for_width(sass::width_regs(w));
      b_.stg(w, kOutSlot, src, pick_offset(w));
    }
    b_.exit();
  }

  // --- body op emitters ----------------------------------------------------
  void body_op() {
    if (warps_ > 1 && rng_.next_below(100) < 4) {
      // All warps run identical control flow (the loop counter is uniform),
      // so CTA-wide barriers are safe anywhere.
      b_.bar_sync();
      return;
    }
    const auto kind = rng_.next_below(100);
    if (kind < 34) {
      alu_op();
    } else if (kind < 48) {
      fma_op();
    } else if (kind < 60) {
      half_op();
    } else if (kind < 66) {
      pred_op();
    } else if (kind < 76 && opts_.allow_mma) {
      mma_op();
    } else if (kind < 84) {
      load(true);
    } else if (kind < 90) {
      store(true);
    } else if (kind < 95) {
      if (use_smem_) load(false); else alu_op();
    } else {
      if (use_smem_) store(false); else alu_op();
    }
  }

  void alu_op() {
    const Reg d = pick_reg();
    const Reg a = pick_reg();
    const Reg b = pick_reg();
    switch (rng_.next_below(8)) {
      case 0: b_.iadd3(d, a, b); break;
      case 1: b_.imad(d, a, b); break;
      case 2: b_.land(d, a, b); break;
      case 3: b_.lor(d, a, b); break;
      case 4: b_.lxor(d, a, b); break;
      case 5: b_.shl(d, a, static_cast<int>(rng_.next_below(31))); break;
      case 6: b_.shr(d, a, static_cast<int>(rng_.next_below(31))); break;
      default: b_.sel(d, kLanePred, a, b); break;
    }
    maybe_pred();
  }

  void fma_op() {
    const Reg d = pick_reg();
    const Reg a = pick_reg();
    const Reg b = pick_reg();
    const Reg c = pick_reg();
    switch (rng_.next_below(3)) {
      case 0: b_.fadd(d, a, b); break;
      case 1: b_.fmul(d, a, b); break;
      default: b_.ffma(d, a, b, c); break;
    }
    maybe_pred();
  }

  void half_op() {
    const Reg d = pick_reg();
    const Reg a = pick_reg();
    const Reg b = pick_reg();
    const Reg c = pick_reg();
    switch (rng_.next_below(5)) {
      case 0: b_.hadd2(d, a, b); break;
      case 1: b_.hmul2(d, a, b); break;
      case 2: b_.hfma2(d, a, b, c); break;
      case 3: b_.f2f_f16_f32(d, a); break;
      default: b_.f2f_f32_f16(d, a); break;
    }
    maybe_pred();
  }

  void pred_op() {
    const Reg a = pick_reg();
    const auto cmp = static_cast<CmpOp>(rng_.next_below(6));
    if (rng_.next_below(2) == 0) {
      b_.isetp(kLanePred, cmp, a, pick_reg());
    } else {
      b_.isetp_imm(kLanePred, cmp, a,
                   static_cast<std::int32_t>(rng_.next_int(-64, 64)));
    }
  }

  void mma_op() {
    sass::Opcode op;
    switch (rng_.next_below(4)) {
      case 0: op = sass::Opcode::kHmma1688F16; break;
      case 1: op = sass::Opcode::kHmma1688F32; break;
      case 2: op = sass::Opcode::kHmma884F16; break;
      default: op = sass::Opcode::kImma8816S8; break;
    }
    const sass::MmaRegCounts n = sass::mma_reg_counts(op);
    const Reg d = pick_for_width(n.d);
    const Reg a = pick_for_width(n.a);
    const Reg b = pick_for_width(n.b);
    const Reg c = rng_.next_below(4) == 0 ? sass::RZ : pick_for_width(n.c);
    switch (op) {
      case sass::Opcode::kHmma1688F16: b_.hmma_1688_f16(d, a, b, c); break;
      case sass::Opcode::kHmma1688F32: b_.hmma_1688_f32(d, a, b, c); break;
      case sass::Opcode::kHmma884F16: b_.hmma_884_f16(d, a, b, c); break;
      default: b_.imma_8816_s8(d, a, b, c); break;
    }
    // MMA is never predicated: exec_step requires all lanes active.
  }

  void load(bool global) {
    const MemWidth w = pick_width();
    const Reg d = pick_for_width(sass::width_regs(w));
    if (global) {
      const auto cache =
          rng_.next_below(4) == 0 ? sass::CacheOp::kCg : sass::CacheOp::kCa;
      b_.ldg(w, d, kInSlot, pick_offset(w), cache);
    } else {
      b_.lds(w, d, kSmSlot, pick_offset(w));
    }
    maybe_pred();
  }

  void store(bool global) {
    const MemWidth w = pick_width();
    const Reg src = pick_for_width(sass::width_regs(w));
    if (global) {
      b_.stg(w, kOutSlot, src, pick_offset(w));
    } else {
      b_.sts(w, kSmSlot, src, pick_offset(w));
    }
    maybe_pred();
  }

  Rng rng_;
  const SchedFuzzOptions& opts_;
  sass::KernelBuilder b_;
  int warps_ = 1;
  int threads_ = 32;
  bool use_smem_ = false;
};

}  // namespace

check::FuzzCase generate_virtual_case(std::uint64_t seed,
                                      const SchedFuzzOptions& opts) {
  VirtualGenerator gen(seed, opts);
  return gen.build(seed);
}

SchedFuzzReport run_sched_fuzz(std::uint64_t base_seed, int count,
                               const SchedFuzzOptions& opts) {
  SchedFuzzReport rep;
  check::FuzzOptions run_opts;
  run_opts.timed_max_cycles = opts.timed_max_cycles;

  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    check::FuzzCase virt;
    try {
      virt = generate_virtual_case(seed, opts);
    } catch (const std::exception& e) {
      rep.failures.push_back(
          {seed, false, "schedule", std::string("generator: ") + e.what(), ""});
      continue;
    }
    ++rep.programs;

    for (const bool reorder : {false, true}) {
      ScheduleOptions sopts;
      sopts.reorder = reorder;
      check::FuzzCase scheduled = virt;
      try {
        scheduled.prog = schedule(virt.prog, sopts);
      } catch (const std::exception& e) {
        rep.failures.push_back(
            {seed, reorder, "schedule", e.what(), virt.prog.disassemble()});
        continue;
      }
      ++rep.schedules;

      // Belt and braces: schedule() already verified, but re-running the
      // detector here keeps the fuzzer meaningful with verify disabled.
      const auto diags = check::find_hazards(scheduled.prog);
      if (sass::has_errors(diags)) {
        std::string detail;
        for (const auto& d : diags) {
          if (d.severity == sass::DiagSeverity::kError) {
            detail += sass::format(d) + "\n";
          }
        }
        rep.failures.push_back(
            {seed, reorder, "hazard", detail, scheduled.prog.disassemble()});
        continue;
      }

      const auto div = check::run_case(scheduled, run_opts);
      if (!div.has_value()) continue;
      const bool is_exception = div->rfind("exception:", 0) == 0;
      rep.failures.push_back({seed, reorder,
                              is_exception ? "exception" : "divergence", *div,
                              scheduled.prog.disassemble()});
    }
  }
  return rep;
}

}  // namespace tc::sched
