#include "sched/schedule.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "check/hazard.hpp"
#include "common/error.hpp"
#include "sass/validator.hpp"

namespace tc::sched {
namespace {

using sass::Instruction;
using sass::Opcode;

// --- operand enumeration ----------------------------------------------------
// Mirrors the hazard detector's view of register traffic exactly: the
// scheduler's constraints must be a superset of what the oracle checks.

struct RegRange {
  int lo = 0;
  int count = 0;
};

bool overlaps(const RegRange& a, const RegRange& b) {
  return a.count > 0 && b.count > 0 && a.lo < b.lo + b.count && b.lo < a.lo + a.count;
}

bool is_mio(Opcode op) { return sass::pipe_class(op) == sass::PipeClass::kMio; }
bool is_control(Opcode op) { return sass::pipe_class(op) == sass::PipeClass::kControl; }

/// Registers written through the fixed-latency (non-MIO) path.
RegRange fixed_write_range(const Instruction& inst) {
  if (inst.dst.is_rz()) return {};
  if (is_mio(inst.op) || is_control(inst.op)) return {};
  if (sass::is_mma(inst.op)) return {inst.dst.idx, sass::mma_reg_counts(inst.op).d};
  return {inst.dst.idx, 1};
}

/// Destination range of a memory load (written at MIO data arrival).
RegRange load_dst_range(const Instruction& inst) {
  if ((inst.op == Opcode::kLdg || inst.op == Opcode::kLds) && !inst.dst.is_rz()) {
    return {inst.dst.idx, sass::width_regs(inst.width)};
  }
  return {};
}

/// Register ranges read at issue time (operand collectors).
std::array<RegRange, 3> issue_read_ranges(const Instruction& inst) {
  std::array<RegRange, 3> out{};
  int slot = 0;
  const auto add = [&](sass::Reg r, int count) {
    if (!r.is_rz() && count > 0) out[static_cast<std::size_t>(slot++)] = {r.idx, count};
  };
  switch (inst.op) {
    case Opcode::kLdg:
    case Opcode::kLds:
      add(inst.srca, 1);
      break;
    case Opcode::kStg:
    case Opcode::kSts:
      add(inst.srca, 1);
      add(inst.srcb, sass::width_regs(inst.width));
      break;
    default:
      if (is_control(inst.op)) break;
      if (sass::is_mma(inst.op)) {
        const auto rc = sass::mma_reg_counts(inst.op);
        add(inst.srca, rc.a);
        add(inst.srcb, rc.b);
        add(inst.srcc, rc.c);
      } else {
        add(inst.srca, 1);
        if (!inst.has_imm) add(inst.srcb, 1);
        add(inst.srcc, 1);
      }
      break;
  }
  return out;
}

/// Source registers an in-flight MIO op holds until its read barrier fires.
std::vector<RegRange> mio_src_ranges(const Instruction& inst) {
  std::vector<RegRange> out;
  if (!is_mio(inst.op)) return out;
  if (!inst.srca.is_rz()) out.push_back({inst.srca.idx, 1});
  if ((inst.op == Opcode::kStg || inst.op == Opcode::kSts) && !inst.srcb.is_rz()) {
    out.push_back({inst.srcb.idx, sass::width_regs(inst.width)});
  }
  return out;
}

/// Predicates read at issue: the guard, plus SEL's selector.
std::vector<int> pred_reads(const Instruction& inst) {
  std::vector<int> out;
  if (!inst.guard.is_pt()) out.push_back(inst.guard.idx);
  if (inst.op == Opcode::kSel && !inst.pdst.is_pt()) out.push_back(inst.pdst.idx);
  return out;
}

/// Predicate written (ISETP only), or -1.
int pred_write(const Instruction& inst) {
  if (inst.op == Opcode::kIsetp && !inst.pdst.is_pt()) return inst.pdst.idx;
  return -1;
}

/// Max fixed latency of `prod` over the registers where `w` overlaps `r`.
int raw_weight(const Instruction& prod, const RegRange& w, const RegRange& r,
               sass::LatencyFn fixed) {
  int out = 1;
  const int lo = std::max(w.lo, r.lo);
  const int hi = std::min(w.lo + w.count, r.lo + r.count);
  for (int reg = lo; reg < hi; ++reg) out = std::max(out, fixed(prod, reg - w.lo));
  return out;
}

// --- block partition --------------------------------------------------------

struct Block {
  int s = 0;
  int e = 0;  // inclusive
  bool self_loop = false;
};

std::vector<Block> partition(const std::vector<Instruction>& code) {
  const int n = static_cast<int>(code.size());
  std::vector<char> leader(static_cast<std::size_t>(n), 0);
  if (n > 0) leader[0] = 1;
  for (int pc = 0; pc < n; ++pc) {
    const auto& inst = code[static_cast<std::size_t>(pc)];
    if (inst.op == Opcode::kBra && inst.target >= 0 && inst.target < n) {
      leader[static_cast<std::size_t>(inst.target)] = 1;
    }
    if ((inst.op == Opcode::kBra || inst.op == Opcode::kExit) && pc + 1 < n) {
      leader[static_cast<std::size_t>(pc + 1)] = 1;
    }
  }
  std::vector<Block> blocks;
  int s = 0;
  while (s < n) {
    int e = s;
    while (e + 1 < n && !leader[static_cast<std::size_t>(e + 1)]) ++e;
    const auto& last = code[static_cast<std::size_t>(e)];
    blocks.push_back({s, e, last.op == Opcode::kBra && last.target == s});
    s = e + 1;
  }
  return blocks;
}

// --- pass 2: within-block list scheduling -----------------------------------

/// Anchored instructions never issue before any lower-index instruction of
/// their block: memory and control ops (whose relative order is load-bearing
/// for the MIO queue and for barrier protocols) and every instruction that
/// touches a same-block load destination (the future scoreboard-wait
/// carriers). Reordering therefore only hoists pure fixed-latency work into
/// stall shadows; it can never migrate a wait to where it would block
/// otherwise-overlappable work.
std::vector<char> anchored_set(const std::vector<Instruction>& code, const Block& b) {
  std::vector<char> anchored(static_cast<std::size_t>(b.e - b.s + 1), 0);
  std::vector<RegRange> load_dsts;
  for (int pc = b.s; pc <= b.e; ++pc) {
    const RegRange ld = load_dst_range(code[static_cast<std::size_t>(pc)]);
    if (ld.count > 0) load_dsts.push_back(ld);
  }
  for (int pc = b.s; pc <= b.e; ++pc) {
    const auto& inst = code[static_cast<std::size_t>(pc)];
    bool a = is_mio(inst.op) || is_control(inst.op);
    if (!a) {
      const RegRange fw = fixed_write_range(inst);
      for (const RegRange& ld : load_dsts) {
        if (overlaps(ld, fw)) a = true;
        for (const RegRange& rr : issue_read_ranges(inst)) {
          if (overlaps(ld, rr)) a = true;
        }
      }
    }
    anchored[static_cast<std::size_t>(pc - b.s)] = a ? 1 : 0;
  }
  return anchored;
}

/// Dependence edges (relative indices, lower -> higher) with issue-gap
/// weights: latency for RAW/WAW on the fixed pipes and for predicate
/// visibility, 1 for pure ordering (WAR, MIO queue order, load consumers,
/// BAR fences).
std::vector<std::vector<std::pair<int, int>>> block_preds(const std::vector<Instruction>& code,
                                                          const Block& b,
                                                          const ScheduleOptions& opts) {
  const int n = b.e - b.s + 1;
  std::vector<std::vector<std::pair<int, int>>> preds(static_cast<std::size_t>(n));
  const auto add = [&](int i, int j, int w) {
    preds[static_cast<std::size_t>(j)].push_back({i, w});
  };
  for (int j = 1; j < n; ++j) {
    const Instruction& cj = code[static_cast<std::size_t>(b.s + j)];
    const RegRange fwj = fixed_write_range(cj);
    const RegRange ldj = load_dst_range(cj);
    const auto readsj = issue_read_ranges(cj);
    const auto predsj = pred_reads(cj);
    const int pwj = pred_write(cj);
    for (int i = 0; i < j; ++i) {
      const Instruction& ci = code[static_cast<std::size_t>(b.s + i)];
      if (ci.op == Opcode::kBar || cj.op == Opcode::kBar) {
        add(i, j, 1);  // CTA barrier: full fence inside the block
        continue;
      }
      int w = 0;
      const RegRange fwi = fixed_write_range(ci);
      const RegRange ldi = load_dst_range(ci);
      // RAW (fixed producer -> issue-time reader).
      for (const RegRange& rr : readsj) {
        if (overlaps(fwi, rr)) w = std::max(w, raw_weight(ci, fwi, rr, opts.fixed));
        if (overlaps(ldi, rr)) w = std::max(w, 1);  // barrier carries the timing
      }
      // WAW on every write class; commit-order weight for fixed-fixed.
      const RegRange wj = fwj.count > 0 ? fwj : ldj;
      const RegRange wi = fwi.count > 0 ? fwi : ldi;
      if (overlaps(wi, wj)) {
        w = std::max(w, 1);
        if (fwi.count > 0 && fwj.count > 0) {
          const int lo = std::max(fwi.lo, fwj.lo);
          const int hi = std::min(fwi.lo + fwi.count, fwj.lo + fwj.count);
          for (int reg = lo; reg < hi; ++reg) {
            w = std::max(w, opts.fixed(ci, reg - fwi.lo) - opts.fixed(cj, reg - fwj.lo));
          }
        }
      }
      // WAR: reads happen at issue, order suffices. MIO sources additionally
      // demand a read barrier later; the ordering edge keeps the overwriter
      // behind its victim.
      const auto readsi = issue_read_ranges(ci);
      for (const RegRange& rr : readsi) {
        if (overlaps(rr, wj)) w = std::max(w, 1);
      }
      for (const RegRange& sr : mio_src_ranges(ci)) {
        if (overlaps(sr, wj)) w = std::max(w, 1);
      }
      // MIO queue order (conservative aliasing; the queue is in-order anyway).
      if (is_mio(ci.op) && is_mio(cj.op)) w = std::max(w, 1);
      // Predicates.
      const int pwi = pred_write(ci);
      if (pwi >= 0) {
        for (int p : predsj) {
          if (p == pwi) w = std::max(w, opts.predicate_latency);
        }
        if (pwi == pwj) w = std::max(w, 1);  // WAW
      }
      if (pwj >= 0) {
        for (int p : pred_reads(ci)) {
          if (p == pwj) w = std::max(w, 1);  // WAR
        }
      }
      if (w > 0) add(i, j, w);
    }
  }
  return preds;
}

/// Greedy latency-aware list scheduling of one block. Returns the new order
/// as original relative indices.
std::vector<int> order_block(const std::vector<Instruction>& code, const Block& b,
                             const ScheduleOptions& opts) {
  const int n = b.e - b.s + 1;
  const auto preds = block_preds(code, b, opts);
  const auto anchored = anchored_set(code, b);
  std::vector<char> issued(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> issue_t(static_cast<std::size_t>(n), 0);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  int lowest_unissued = 0;
  std::int64_t t = 0;
  for (int step = 0; step < n; ++step) {
    while (lowest_unissued < n && issued[static_cast<std::size_t>(lowest_unissued)]) {
      ++lowest_unissued;
    }
    int best = -1;
    std::int64_t best_t = 0;
    for (int v = lowest_unissued; v < n; ++v) {
      if (issued[static_cast<std::size_t>(v)]) continue;
      if (anchored[static_cast<std::size_t>(v)] && v != lowest_unissued) continue;
      bool ready = true;
      std::int64_t earliest = t;
      for (const auto& [p, w] : preds[static_cast<std::size_t>(v)]) {
        if (!issued[static_cast<std::size_t>(p)]) {
          ready = false;
          break;
        }
        earliest = std::max(earliest, issue_t[static_cast<std::size_t>(p)] + w);
      }
      if (!ready) continue;
      if (best < 0 || earliest < best_t) {
        best = v;
        best_t = earliest;
      }
      if (earliest <= t) break;  // lowest-index node issuable right now wins
    }
    TC_ASSERT(best >= 0, "list scheduler found no ready instruction");
    issued[static_cast<std::size_t>(best)] = 1;
    issue_t[static_cast<std::size_t>(best)] = best_t;
    order.push_back(best);
    t = best_t + 1;
  }
  return order;
}

// --- pass 3: stall assignment -----------------------------------------------

struct PendingWrite {
  std::int64_t t = -1;
  int lat = 0;
  bool valid = false;
};

/// Global linear issue-time walk: earliest time each instruction may issue
/// so that every fixed-latency RAW/WAW and predicate dependence along any
/// fall-through path is satisfied by stall counts alone. A taken branch that
/// is not a self-loop back edge drains all pending commits (conservative —
/// kernel loops are self-loops, so this costs nothing there); EXIT is a
/// timing fence.
std::vector<std::int64_t> issue_times(const std::vector<Instruction>& code,
                                      const std::vector<Block>& blocks,
                                      const ScheduleOptions& opts) {
  const int n = static_cast<int>(code.size());
  std::vector<char> self_loop_bra(static_cast<std::size_t>(n), 0);
  for (const Block& b : blocks) {
    if (b.self_loop) self_loop_bra[static_cast<std::size_t>(b.e)] = 1;
  }
  std::vector<std::int64_t> t(static_cast<std::size_t>(n), 0);
  std::array<PendingWrite, 256> regs{};
  std::array<PendingWrite, 8> preds{};
  for (int m = 0; m < n; ++m) {
    const Instruction& inst = code[static_cast<std::size_t>(m)];
    std::int64_t req = m == 0 ? 0 : t[static_cast<std::size_t>(m - 1)] + 1;
    for (const RegRange& rr : issue_read_ranges(inst)) {
      for (int reg = rr.lo; reg < rr.lo + rr.count; ++reg) {
        const auto& w = regs[static_cast<std::size_t>(reg)];
        if (w.valid) req = std::max(req, w.t + w.lat);
      }
    }
    for (int p : pred_reads(inst)) {
      const auto& w = preds[static_cast<std::size_t>(p)];
      if (w.valid) req = std::max(req, w.t + opts.predicate_latency);
    }
    const RegRange fw = fixed_write_range(inst);
    for (int reg = fw.lo; reg < fw.lo + fw.count; ++reg) {
      const auto& w = regs[static_cast<std::size_t>(reg)];
      if (w.valid) req = std::max(req, w.t + w.lat - opts.fixed(inst, reg - fw.lo));
    }
    if (inst.op == Opcode::kBra && !self_loop_bra[static_cast<std::size_t>(m)]) {
      // Forward (or multi-block backward) taken branch: every pending commit
      // must land before the target executes. The redirect gap is free.
      for (const auto& w : regs) {
        if (w.valid) req = std::max(req, w.t + w.lat - opts.branch_redirect);
      }
      for (const auto& w : preds) {
        if (w.valid) req = std::max(req, w.t + opts.predicate_latency - opts.branch_redirect);
      }
    }
    t[static_cast<std::size_t>(m)] = req;
    for (int reg = fw.lo; reg < fw.lo + fw.count; ++reg) {
      regs[static_cast<std::size_t>(reg)] = {req, opts.fixed(inst, reg - fw.lo), true};
    }
    const int pw = pred_write(inst);
    if (pw >= 0) preds[static_cast<std::size_t>(pw)] = {req, 0, true};
    if (inst.op == Opcode::kExit) {
      regs.fill({});
      preds.fill({});
    }
  }
  return t;
}

/// Minimum full-iteration issue length T of a self-loop block so that every
/// loop-carried dependence (producer in iteration i, consumer in iteration
/// i+1 with no intervening same-register write) is covered:
/// T >= latency + t_producer - t_consumer, with times local to the block.
std::int64_t loop_required_length(const std::vector<Instruction>& code, const Block& b,
                                  const std::vector<std::int64_t>& t,
                                  const ScheduleOptions& opts) {
  std::int64_t need = 1;
  const auto lt = [&](int pc) {
    return t[static_cast<std::size_t>(pc)] - t[static_cast<std::size_t>(b.s)];
  };
  // Per register: positions of writes (with per-register latency) and reads.
  struct Ev {
    std::vector<std::pair<int, int>> writes;  // (pc, latency)
    std::vector<int> reads;
    std::vector<int> wlats_new;  // latency of the write at writes[k] itself
  };
  std::map<int, Ev> regs;
  std::map<int, std::vector<int>> pred_writes, pred_readers;
  for (int pc = b.s; pc <= b.e; ++pc) {
    const Instruction& inst = code[static_cast<std::size_t>(pc)];
    const RegRange fw = fixed_write_range(inst);
    for (int reg = fw.lo; reg < fw.lo + fw.count; ++reg) {
      regs[reg].writes.push_back({pc, opts.fixed(inst, reg - fw.lo)});
    }
    for (const RegRange& rr : issue_read_ranges(inst)) {
      for (int reg = rr.lo; reg < rr.lo + rr.count; ++reg) regs[reg].reads.push_back(pc);
    }
    for (int p : pred_reads(inst)) pred_readers[p].push_back(pc);
    const int pw = pred_write(inst);
    if (pw >= 0) pred_writes[pw].push_back(pc);
  }
  for (auto& [reg, ev] : regs) {
    if (ev.writes.empty()) continue;
    const auto newest_wrapping = [&](int before_pc) -> const std::pair<int, int>* {
      // Newest write strictly before `before_pc`; if none, wrap to the
      // newest write in the whole block (previous iteration).
      const std::pair<int, int>* hit = nullptr;
      for (const auto& w : ev.writes) {
        if (w.first < before_pc) hit = &w;
      }
      if (hit == nullptr) hit = &ev.writes.back();
      return hit;
    };
    for (int r : ev.reads) {
      bool same_iter = false;
      for (const auto& w : ev.writes) same_iter = same_iter || w.first < r;
      if (same_iter) continue;  // linear pass already enforced it
      const auto* w = newest_wrapping(r);
      need = std::max<std::int64_t>(need, w->second + lt(w->first) - lt(r));
    }
    // Loop-carried WAW commit order: first write of the next iteration vs
    // the newest write of the previous one.
    const auto& first = ev.writes.front();
    const auto& last = ev.writes.back();
    if (first.first != last.first) {
      need = std::max<std::int64_t>(need, last.second - first.second + lt(last.first) -
                                              lt(first.first));
    }
  }
  for (auto& [p, readers] : pred_readers) {
    auto it = pred_writes.find(p);
    if (it == pred_writes.end() || it->second.empty()) continue;
    for (int r : readers) {
      bool same_iter = false;
      for (int wpc : it->second) same_iter = same_iter || wpc < r;
      if (same_iter) continue;
      const int wpc = it->second.back();
      need = std::max<std::int64_t>(need, opts.predicate_latency + lt(wpc) - lt(r));
    }
  }
  return need;
}

// --- pass 4: scoreboard allocation ------------------------------------------

struct Demand {
  int setter = -1;
  int waiter = -1;  // -1: no consumer anywhere (EXIT drain only)
  bool wrapped = false;
  bool write = true;  // write barrier (load dst) vs read barrier (MIO sources)
  Opcode setter_op = Opcode::kNop;
  int color = -1;
  bool skip_wait = false;  // covered by another wait on the same color
  std::vector<int> extra_waits;  // BAR drains / loop-exit drain positions
};

const Block* block_of(const std::vector<Block>& blocks, int pc) {
  for (const Block& b : blocks) {
    if (pc >= b.s && pc <= b.e) return &b;
  }
  return nullptr;
}

/// True when `inst` reads or writes a register in `r` (write demand) or
/// overwrites one of the held source ranges (read demand).
bool consumes(const Instruction& inst, const RegRange& r, bool write_demand,
              const std::vector<RegRange>& held_srcs) {
  if (write_demand) {
    for (const RegRange& rr : issue_read_ranges(inst)) {
      if (overlaps(rr, r)) return true;
    }
    const RegRange fw = fixed_write_range(inst);
    const RegRange ld = load_dst_range(inst);
    return overlaps(fw, r) || overlaps(ld, r);
  }
  const RegRange fw = fixed_write_range(inst);
  const RegRange ld = load_dst_range(inst);
  for (const RegRange& sr : held_srcs) {
    if (overlaps(fw, sr) || overlaps(ld, sr)) return true;
  }
  return false;
}

std::vector<Demand> collect_demands(const std::vector<Instruction>& code,
                                    const std::vector<Block>& blocks) {
  const int n = static_cast<int>(code.size());
  std::vector<Demand> demands;
  for (int pc = 0; pc < n; ++pc) {
    const Instruction& inst = code[static_cast<std::size_t>(pc)];
    const RegRange ld = load_dst_range(inst);
    const bool store = inst.op == Opcode::kSts || inst.op == Opcode::kStg;
    if (ld.count == 0 && !store) continue;
    Demand d;
    d.setter = pc;
    d.setter_op = inst.op;
    d.write = ld.count > 0;
    const std::vector<RegRange> held = d.write ? std::vector<RegRange>{} : mio_src_ranges(inst);
    const Block* b = block_of(blocks, pc);
    const auto hit = [&](int j) {
      return consumes(code[static_cast<std::size_t>(j)], ld, d.write, held);
    };
    for (int j = pc + 1; j <= b->e && d.waiter < 0; ++j) {
      if (hit(j)) d.waiter = j;
    }
    if (d.waiter < 0 && b->self_loop) {
      // Wrap through the back edge. The scan includes the setter itself: a
      // load with no consumer inside the loop still WAW-races its own next
      // iteration's issue, so the wait lands on the re-issuing instruction
      // (the detector and the timed SM both process waits before issue).
      for (int j = b->s; j <= pc && d.waiter < 0; ++j) {
        if (hit(j)) {
          d.waiter = j;
          d.wrapped = true;
          // The loop-exit path leaves this op in flight; drain it on the
          // first instruction after the loop so post-loop code never races
          // the late writeback.
          if (b->e + 1 < n) d.extra_waits.push_back(b->e + 1);
        }
      }
    }
    if (d.waiter < 0) {
      for (int j = b->e + 1; j < n && d.waiter < 0; ++j) {
        if (hit(j)) d.waiter = j;
      }
    }
    demands.push_back(std::move(d));
  }
  // BAR.SYNC drains every outstanding shared-memory *read* (LDS): other
  // warps overwrite the tile after the barrier, so this warp's in-flight
  // reads must have completed. In-flight global prefetches deliberately
  // survive the barrier — draining them would serialize the pipeline.
  for (int pc = 0; pc < n; ++pc) {
    if (code[static_cast<std::size_t>(pc)].op != Opcode::kBar) continue;
    for (Demand& d : demands) {
      if (d.setter_op != Opcode::kLds || !d.write) continue;
      const bool outstanding = d.wrapped ? (pc > d.setter || pc < d.waiter)
                                         : (pc > d.setter && d.waiter >= 0 && pc < d.waiter);
      if (outstanding) d.extra_waits.push_back(pc);
    }
  }
  return demands;
}

/// Interference coloring onto the six hardware barriers. Sharing a color is
/// always legal (a wait releases every op counted on the barrier — it only
/// over-synchronizes), so overflow degrades gracefully. Legal is not free,
/// though: a wait position falling inside another same-color demand's
/// (setter, waiter] window drains that bystander mid-flight and stalls for
/// its remaining latency — catastrophic when the bystander is a global load
/// armed one cycle earlier. Colors are therefore picked by minimal
/// drain-conflict cost, weighted by the bystander's latency class; demands
/// with the same waiter share for free and same-kind demands pool together
/// as the tie-break (which is what the covered-wait elision pass feeds on).
int color_demands(std::vector<Demand>& demands) {
  struct ColorState {
    bool used = false;
    Opcode op = Opcode::kNop;  // pool identity: the first member's producer
    bool wrapped = false;
    std::vector<const Demand*> members;
  };
  std::array<ColorState, sass::kNumBarriers> colors{};
  // True when a wait executing at `p` would release demand `d` mid-flight.
  // p == d.waiter is d's own (merged) wait position, not a conflict; a
  // demand with no waiter stays armed until EXIT, so any later wait on its
  // color pays for it.
  const auto drains = [](int p, const Demand& d) {
    if (p == d.waiter) return false;
    if (d.wrapped) return d.waiter < 0 || p > d.setter || p <= d.waiter;
    if (p <= d.setter) return false;
    return d.waiter < 0 || p <= d.waiter;
  };
  // Remaining-latency class of a drained bystander: global loads are the
  // expensive casualty, shared loads moderate, read-barrier (operand fetch)
  // demands cheap.
  const auto weight = [](const Demand& d) -> std::int64_t {
    if (!d.write) return 10;
    return d.setter_op == Opcode::kLdg ? 1000 : 30;
  };
  const auto pair_cost = [&](const Demand& a, const Demand& b) -> std::int64_t {
    // Same-kind demands pool for free: their mutual wait-in-window overlaps
    // are exactly what the covered-wait elision pass collapses to one wait
    // per group (the hand-scheduled kernels' per-group barrier discipline).
    if (a.setter_op == b.setter_op && a.write == b.write && a.wrapped == b.wrapped) return 0;
    std::int64_t c = 0;
    if (a.waiter >= 0 && drains(a.waiter, b)) c += weight(b);
    for (int p : a.extra_waits) {
      if (drains(p, b)) c += weight(b);
    }
    if (b.waiter >= 0 && drains(b.waiter, a)) c += weight(a);
    for (int p : b.extra_waits) {
      if (drains(p, a)) c += weight(a);
    }
    return c;
  };
  std::vector<Demand*> order;
  for (Demand& d : demands) order.push_back(&d);
  std::sort(order.begin(), order.end(),
            [](const Demand* a, const Demand* b) { return a->setter < b->setter; });
  int used = 0;
  for (Demand* d : order) {
    int pick = -1;
    // A demand already waited at the same instruction shares its bit.
    for (const Demand* o : order) {
      if (o->color >= 0 && o->waiter == d->waiter && d->waiter >= 0 && o != d) pick = o->color;
    }
    if (pick < 0) {
      std::int64_t best_cost = 0;
      bool best_samekind = false;
      std::size_t best_members = 0;
      for (int c = 0; c < sass::kNumBarriers; ++c) {
        const auto& cs = colors[static_cast<std::size_t>(c)];
        std::int64_t cost = 0;
        for (const Demand* m : cs.members) cost += pair_cost(*d, *m);
        const bool samekind =
            cs.used && cs.op == d->setter_op && cs.wrapped == d->wrapped;
        const bool better =
            pick < 0 || cost < best_cost ||
            (cost == best_cost &&
             (samekind > best_samekind ||
              (samekind == best_samekind && cs.members.size() < best_members)));
        if (better) {
          pick = c;
          best_cost = cost;
          best_samekind = samekind;
          best_members = cs.members.size();
        }
      }
    }
    auto& cs = colors[static_cast<std::size_t>(pick)];
    if (!cs.used) {
      ++used;
      cs.used = true;
      cs.op = d->setter_op;
      cs.wrapped = d->wrapped;
    }
    cs.members.push_back(d);
    d->color = pick;
  }
  return used;
}

/// Covered-wait elision: a wait on a barrier releases *every* op counted on
/// it, so a demand needs no wait of its own when another kept wait on the
/// same color falls inside its (setter, waiter] execution window. This is
/// what keeps per-consumer wait placement from degenerating on pooled
/// barriers: one wait per fragment group survives instead of one per
/// consumer — and, crucially, a consumer never ends up waiting on a
/// *just-issued* load that merely shares its color (that would land the full
/// shared-memory latency on the compute stream once per consumer).
/// Conservative scope: the covering wait must sit in the covered waiter's
/// block; the cross-block leftovers go to the detector-mirroring
/// redundant-wait pass.
int elide_covered_waits(std::vector<Demand>& demands, const std::vector<Block>& blocks) {
  struct Kept {
    int pc;
    const Block* block;
    int color;
  };
  std::vector<Kept> kept;
  // Mandatory drains (BAR.SYNC / loop-exit) always execute: coverers, never
  // candidates.
  for (const Demand& d : demands) {
    for (int pc : d.extra_waits) kept.push_back({pc, block_of(blocks, pc), d.color});
  }
  std::vector<Demand*> order;
  for (Demand& d : demands) {
    if (d.waiter >= 0) order.push_back(&d);
  }
  std::sort(order.begin(), order.end(),
            [](const Demand* a, const Demand* b) { return a->waiter < b->waiter; });
  int elided = 0;
  for (Demand* d : order) {
    const Block* bw = block_of(blocks, d->waiter);
    const Block* bs = block_of(blocks, d->setter);
    bool covered = false;
    for (const Kept& k : kept) {
      if (k.color != d->color || k.block != bw) continue;
      if (d->wrapped) {
        // Setter and waiter straddle the back edge: the wait covers when it
        // runs after the arm (same iteration) or before the consumption
        // (next iteration).
        covered = k.pc > d->setter || k.pc <= d->waiter;
      } else if (bs == bw) {
        covered = k.pc > d->setter && k.pc <= d->waiter;
      } else if (d->setter < bw->s) {
        // Setter in an earlier block: every entry into the waiter's block
        // runs k.pc before the waiter.
        covered = k.pc <= d->waiter;
      }
      if (covered) break;
    }
    if (covered) {
      d->skip_wait = true;
      ++elided;
    } else {
      kept.push_back({d->waiter, bw, d->color});
    }
  }
  return elided;
}

void apply_demands(std::vector<Instruction>& code, std::vector<Demand>& demands,
                   const std::vector<Block>& blocks, ScheduleStats& stats) {
  stats.barriers_used = color_demands(demands);
  stats.waits_elided = elide_covered_waits(demands, blocks);
  const int n = static_cast<int>(code.size());
  for (const Demand& d : demands) {
    auto& setter = code[static_cast<std::size_t>(d.setter)];
    if (d.write) {
      setter.ctrl.write_barrier = static_cast<std::uint8_t>(d.color);
    } else {
      setter.ctrl.read_barrier = static_cast<std::uint8_t>(d.color);
    }
    const auto wait_at = [&](int pc) {
      code[static_cast<std::size_t>(pc)].ctrl.wait_mask |=
          static_cast<std::uint8_t>(1u << d.color);
    };
    if (d.waiter >= 0 && !d.skip_wait) wait_at(d.waiter);
    for (int pc : d.extra_waits) wait_at(pc);
  }
  // EXIT drains whatever is provably still (or possibly) armed so the kernel
  // retires with clean scoreboards and the barrier-pairing lint stays quiet.
  for (int pc = 0; pc < n; ++pc) {
    if (code[static_cast<std::size_t>(pc)].op != Opcode::kExit) continue;
    for (const Demand& d : demands) {
      if (d.setter >= pc) continue;
      const bool consumed_before = !d.wrapped && d.waiter >= 0 && d.waiter <= pc;
      if (!consumed_before) {
        code[static_cast<std::size_t>(pc)].ctrl.wait_mask |=
            static_cast<std::uint8_t>(1u << d.color);
      }
    }
  }
}

// --- pass 5: redundant-wait elimination -------------------------------------

struct WaitVerdict {
  bool redundant_somewhere = false;  // the detector would warn at >= 1 visit
  bool redundant_everywhere = true;  // ... at every visit
};

/// Replays the detector's segment walk (including the unrolled second pass
/// of a self-loop) and classifies every wait bit: is it provably redundant
/// (barrier not armed by any in-flight op of the segment, and known clear
/// from a previous in-segment wait or program entry) at some / at every
/// visit? NOTE: arming does not reset the clear state — the detector's
/// BarState is sticky and only the in-flight ("armed") check suppresses its
/// redundant-wait warning; this replay matches it bit for bit.
std::map<std::pair<int, int>, WaitVerdict> replay_waits(const std::vector<Instruction>& code,
                                                        const std::vector<Block>& blocks) {
  std::map<std::pair<int, int>, WaitVerdict> verdicts;
  struct Op {
    std::uint8_t wb, rb;
  };
  for (const Block& b : blocks) {
    std::vector<Op> inflight;
    std::array<bool, sass::kNumBarriers> clear{};
    clear.fill(b.s == 0);
    const int iters = b.self_loop ? 2 : 1;
    for (int it = 0; it < iters; ++it) {
      for (int pc = b.s; pc <= b.e; ++pc) {
        const Instruction& inst = code[static_cast<std::size_t>(pc)];
        if (inst.ctrl.wait_mask != 0) {
          for (int bar = 0; bar < sass::kNumBarriers; ++bar) {
            if (((inst.ctrl.wait_mask >> bar) & 1u) == 0) continue;
            bool armed = false;
            for (auto& op : inflight) {
              if (op.wb == bar) {
                op.wb = sass::kNoBarrier;
                armed = true;
              }
              if (op.rb == bar) {
                op.rb = sass::kNoBarrier;
                armed = true;
              }
            }
            const bool redundant = !armed && clear[static_cast<std::size_t>(bar)];
            auto& v = verdicts[{pc, bar}];
            v.redundant_somewhere = v.redundant_somewhere || redundant;
            v.redundant_everywhere = v.redundant_everywhere && redundant;
            clear[static_cast<std::size_t>(bar)] = true;
          }
        }
        if (is_mio(inst.op) &&
            (inst.ctrl.write_barrier != sass::kNoBarrier ||
             inst.ctrl.read_barrier != sass::kNoBarrier)) {
          inflight.push_back({inst.ctrl.write_barrier, inst.ctrl.read_barrier});
        }
      }
    }
  }
  return verdicts;
}

/// Eliminates every wait bit the detector would flag as redundant.
///  * Redundant at every visit: the barrier counter is provably zero there
///    on all paths the detector checks, so the bit is dropped outright.
///  * Redundant only at the second visit of an unrolled self-loop (a BAR
///    drain or an earlier wait consumed the arm in steady state, but the
///    first iteration still relied on a producer outside the loop): the bit
///    is hoisted onto the last pre-loop instruction, which pays the wait
///    once instead of every iteration — the classic loop-preheader hoist.
/// Iterates to a fixpoint: a move can expose new redundancy upstream, but
/// bits only ever move out of loops or disappear, so this terminates.
int drop_redundant_waits(std::vector<Instruction>& code, const std::vector<Block>& blocks,
                         int* moved_out) {
  int dropped = 0;
  int moved = 0;
  for (int round = 0; round < 4 * sass::kNumBarriers; ++round) {
    const auto verdicts = replay_waits(code, blocks);
    bool changed = false;
    for (const auto& [key, v] : verdicts) {
      const auto [pc, bar] = key;
      if (!v.redundant_somewhere) continue;
      auto& mask = code[static_cast<std::size_t>(pc)].ctrl.wait_mask;
      if ((mask & (1u << bar)) == 0) continue;  // already handled this round
      if (v.redundant_everywhere) {
        mask &= static_cast<std::uint8_t>(~(1u << bar));
        ++dropped;
        changed = true;
        continue;
      }
      const Block* b = block_of(blocks, pc);
      if (b != nullptr && b->self_loop && b->s > 0) {
        mask &= static_cast<std::uint8_t>(~(1u << bar));
        code[static_cast<std::size_t>(b->s - 1)].ctrl.wait_mask |=
            static_cast<std::uint8_t>(1u << bar);
        ++moved;
        changed = true;
      }
      // Otherwise leave the bit: the verifier will surface the warning and
      // reject — this only happens for programs whose first loop iteration
      // genuinely consumes an in-flight value with no pre-loop producer.
    }
    if (!changed) break;
  }
  if (moved_out != nullptr) *moved_out = moved;
  return dropped;
}

// --- pass 6: register reuse flags -------------------------------------------

int assign_reuse_flags(std::vector<Instruction>& code) {
  int flags = 0;
  const auto slot_reg = [](const Instruction& inst, int slot) -> sass::Reg {
    switch (slot) {
      case 0:
        return inst.srca;
      case 1:
        return inst.has_imm ? sass::RZ : inst.srcb;
      default:
        return inst.srcc;
    }
  };
  for (std::size_t m = 0; m + 1 < code.size(); ++m) {
    Instruction& cur = code[m];
    const Instruction& nxt = code[m + 1];
    const auto pc = sass::pipe_class(cur.op);
    if (pc != sass::pipe_class(nxt.op)) continue;
    if (pc != sass::PipeClass::kTensor && pc != sass::PipeClass::kFma) continue;
    const RegRange fw = fixed_write_range(cur);
    for (int slot = 0; slot < 3; ++slot) {
      const sass::Reg r = slot_reg(cur, slot);
      if (r.is_rz() || !(r == slot_reg(nxt, slot))) continue;
      if (fw.count > 0 && r.idx >= fw.lo && r.idx < fw.lo + fw.count) continue;
      cur.ctrl.reuse |= static_cast<std::uint8_t>(1u << slot);
      ++flags;
    }
  }
  return flags;
}

}  // namespace

// --- driver -----------------------------------------------------------------

sass::Program schedule(const sass::Program& virt, const ScheduleOptions& opts,
                       ScheduleStats& stats) {
  stats = {};
  TC_CHECK(opts.fixed != nullptr, "schedule(): latency oracle must not be null");
  for (std::size_t pc = 0; pc < virt.code.size(); ++pc) {
    const auto& c = virt.code[pc].ctrl;
    TC_CHECK(c.stall == 1 && c.write_barrier == sass::kNoBarrier &&
                 c.read_barrier == sass::kNoBarrier && c.wait_mask == 0 && c.reuse == 0,
             "schedule(): input is not a virtual program — instruction " + std::to_string(pc) +
                 " carries manual control information (" + virt.code[pc].to_string() + ")");
  }
  sass::Program out = virt;
  if (out.code.empty()) return out;

  // Pass 1+2: block partition and (optional) list scheduling. Reordering is
  // slot-preserving per block, so branch targets (always block leaders)
  // survive unchanged.
  std::vector<Block> blocks = partition(out.code);
  if (opts.reorder) {
    std::vector<Instruction> reordered = out.code;
    for (const Block& b : blocks) {
      const std::vector<int> order = order_block(out.code, b, opts);
      for (int slot = 0; slot < static_cast<int>(order.size()); ++slot) {
        reordered[static_cast<std::size_t>(b.s + slot)] =
            out.code[static_cast<std::size_t>(b.s + order[static_cast<std::size_t>(slot)])];
        if (order[static_cast<std::size_t>(slot)] != slot) ++stats.reordered;
      }
    }
    out.code = std::move(reordered);
  }

  // Pass 3: minimal stalls via the global issue-time walk, then realize the
  // gaps as stall counts plus NOP padding, and pad self-loop back edges.
  const std::vector<std::int64_t> t = issue_times(out.code, blocks, opts);
  const int n = static_cast<int>(out.code.size());
  std::vector<int> stall(static_cast<std::size_t>(n), 1);
  std::vector<std::int64_t> pad_after(static_cast<std::size_t>(n), 0);
  for (int m = 0; m + 1 < n; ++m) {
    const std::int64_t gap = t[static_cast<std::size_t>(m + 1)] - t[static_cast<std::size_t>(m)];
    stall[static_cast<std::size_t>(m)] = static_cast<int>(std::min<std::int64_t>(gap, 15));
    pad_after[static_cast<std::size_t>(m)] = gap - stall[static_cast<std::size_t>(m)];
  }
  for (const Block& b : blocks) {
    if (!b.self_loop) continue;
    const std::int64_t t_min = loop_required_length(out.code, b, t, opts);
    int& bra_stall = stall[static_cast<std::size_t>(b.e)];
    const std::int64_t body = t[static_cast<std::size_t>(b.e)] - t[static_cast<std::size_t>(b.s)];
    std::int64_t have = body + std::max<std::int64_t>(bra_stall, opts.branch_redirect);
    if (have < t_min) {
      // First widen the branch's own stall (the taken advance is
      // max(stall, redirect), so only stalls past the redirect gain time).
      const int widened =
          static_cast<int>(std::min<std::int64_t>(15, std::max<std::int64_t>(bra_stall,
                                                                             t_min - body)));
      have += std::max<std::int64_t>(widened, opts.branch_redirect) -
              std::max<std::int64_t>(bra_stall, opts.branch_redirect);
      bra_stall = std::max(bra_stall, widened);
    }
    if (have < t_min && b.e > b.s) {
      pad_after[static_cast<std::size_t>(b.e - 1)] += t_min - have;  // NOPs before the BRA
    }
  }
  std::vector<Instruction> padded;
  std::vector<int> new_index(static_cast<std::size_t>(n), 0);
  for (int m = 0; m < n; ++m) {
    new_index[static_cast<std::size_t>(m)] = static_cast<int>(padded.size());
    Instruction inst = out.code[static_cast<std::size_t>(m)];
    inst.ctrl.stall = static_cast<std::uint8_t>(stall[static_cast<std::size_t>(m)]);
    padded.push_back(inst);
    std::int64_t pad = pad_after[static_cast<std::size_t>(m)];
    while (pad > 0) {
      const int k = static_cast<int>(std::min<std::int64_t>(pad, 15));
      Instruction nop;
      nop.op = Opcode::kNop;
      nop.ctrl.stall = static_cast<std::uint8_t>(k);
      padded.push_back(nop);
      pad -= k;
      ++stats.nops_inserted;
    }
  }
  for (Instruction& inst : padded) {
    if (inst.op == Opcode::kBra && inst.target >= 0) {
      inst.target = new_index[static_cast<std::size_t>(inst.target)];
    }
  }
  out.code = std::move(padded);

  // Pass 4: scoreboard allocation on final positions.
  blocks = partition(out.code);
  std::vector<Demand> demands = collect_demands(out.code, blocks);
  apply_demands(out.code, demands, blocks, stats);

  // Pass 5: drop provably redundant wait bits (and hoist steady-state
  // redundant loop waits into the preheader).
  stats.waits_dropped = drop_redundant_waits(out.code, blocks, &stats.waits_hoisted);
  for (const Instruction& inst : out.code) {
    for (int bar = 0; bar < sass::kNumBarriers; ++bar) {
      stats.waits_placed += (inst.ctrl.wait_mask >> bar) & 1;
    }
  }

  // Pass 6: reuse flags.
  if (opts.assign_reuse) stats.reuse_flags = assign_reuse_flags(out.code);

  stats.instructions = static_cast<int>(out.code.size());
  for (const Instruction& inst : out.code) stats.static_issue_cycles += inst.ctrl.stall;

  if (opts.verify) {
    sass::validate(out);
    const check::LatencyModel model{opts.fixed, opts.branch_redirect, opts.predicate_latency};
    const auto diags = check::find_hazards(out, model);
    if (!diags.empty()) {
      std::string msg = "schedule(): hazard oracle rejected the result:";
      for (const auto& d : diags) msg += "\n  " + sass::format(d);
      TC_CHECK(false, msg);
    }
  }
  return out;
}

sass::Program schedule(const sass::Program& virt, const ScheduleOptions& opts) {
  ScheduleStats stats;
  return schedule(virt, opts, stats);
}

}  // namespace tc::sched
