// Scheduler-mode differential fuzzer.
//
// The counterpart to check/fuzz.hpp: instead of generating programs that are
// hazard-free by construction (manual stalls + barriers), this generator
// emits *virtual* programs — the same instruction mix, register map, loop
// shapes, and multi-warp/BAR.SYNC structure, but with NO control info at all
// (an unscheduled KernelBuilder enforces that). Each program is then run
// through tc::sched::schedule() twice (reorder off and on) and each result
// must
//
//   1. schedule at all (no exception from the pipeline or its verify gate),
//   2. be clean under check::find_hazards (belt and braces — verify already
//      gates this inside schedule()),
//   3. agree bit-for-bit between the functional and timed executors
//      (check::run_case), since a correctly scheduled race-free program can
//      only diverge if the scheduler under-synchronized it.
//
// This lives in tc::sched rather than tc::check because it depends on the
// scheduler; check/ must stay below sched/ in the link order so the
// scheduler can use find_hazards as its verification oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/fuzz.hpp"

namespace tc::sched {

struct SchedFuzzOptions {
  int max_body_ops = 24;  // upper bound on random body instructions
  bool allow_loops = true;
  bool allow_mma = true;
  bool allow_multi_warp = true;
  std::uint64_t timed_max_cycles = 2'000'000;  // deadlock guard for the timed SM
};

struct SchedFuzzFailure {
  std::uint64_t seed = 0;
  bool reordered = false;  // which scheduling mode failed
  std::string phase;       // "schedule" | "hazard" | "divergence" | "exception"
  std::string detail;      // exception text, diagnostics, or probe diff
  std::string program;     // disassembly (virtual if scheduling threw)
};

struct SchedFuzzReport {
  int programs = 0;   // virtual programs generated
  int schedules = 0;  // successful schedule() runs (2 per program when clean)
  std::vector<SchedFuzzFailure> failures;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Deterministically generates the virtual test case for `seed`: a program
/// whose every control word is the default (stall 1, no barriers, no waits),
/// packaged with reproducible launch data in check's FuzzCase shape.
check::FuzzCase generate_virtual_case(std::uint64_t seed,
                                      const SchedFuzzOptions& opts);

/// Fuzzes `count` seeds starting at `base_seed` through the full
/// generate -> schedule -> hazard-scan -> differential-run pipeline.
SchedFuzzReport run_sched_fuzz(std::uint64_t base_seed, int count,
                               const SchedFuzzOptions& opts = {});

}  // namespace tc::sched
