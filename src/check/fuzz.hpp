// Differential SASS fuzzer.
//
// Generates random-but-valid SASS programs — HMMA.1688/.884/IMMA mixes,
// LDS/STS/LDG/STG at widths 32/64/128, per-lane predication, single-block
// counted loops, multi-warp CTAs with BAR.SYNC — that are hazard-free BY
// CONSTRUCTION: every fixed-latency producer carries a stall covering its
// full latency, every load gets a write barrier that is waited on before any
// consumer, every store a read barrier waited on before its sources are
// reused, and all barriers are drained before a loop back edge and before
// EXIT. Each program then runs through BOTH executors:
//
//   functional (immediate writeback, schedule-independent)  vs
//   timed SM   (hazard-accurate delayed writeback)
//
// and the final per-warp register file, predicate file, and global memory
// are compared bit-for-bit. Since the program is race-free, ANY divergence
// is an executor bug, not a program bug. Failures are shrunk by greedy
// instruction deletion (branch targets re-fixed, candidates that fail
// validation or introduce hazard-detector errors are skipped) until no
// single removal preserves the divergence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "numerics/numerics.hpp"
#include "sass/program.hpp"

namespace tc::check {

/// Which pair of engines a fuzz case is differenced across.
enum class FuzzCompare : std::uint8_t {
  kFunctionalVsTimed,   // functional interpreter vs hazard-accurate timed SM
  kJitVsInterpreter,    // functional JIT vs functional interpreter (the oracle)
};

struct FuzzOptions {
  int max_body_ops = 24;       // upper bound on random body instructions
  bool allow_loops = true;
  bool allow_mma = true;
  bool allow_multi_warp = true;
  std::uint64_t timed_max_cycles = 2'000'000;  // deadlock guard for the timed SM
  /// Draw register-pool seeds and input bytes from the numerics operand
  /// class — subnormals, NaN payloads, signed zeros, infinities, and exact
  /// powers of two spanning the FP16 binade ladder — instead of uniform
  /// bits. This steers HMMA/half ops straight into the edge cases where the
  /// two numerics modes disagree hardest.
  bool numeric_operands = false;
  /// HMMA semantics BOTH engines run with; the differential comparison is
  /// still bitwise, so each mode must be self-consistent across executors.
  numerics::NumericsMode numerics = numerics::NumericsMode::kIdealized;
  /// Engine pair to difference. kJitVsInterpreter runs the SAME functional
  /// executor twice — once with ExecEngine::kJit, once interpreting — so any
  /// divergence is a compiler/backend bug against the interpreter oracle.
  FuzzCompare compare = FuzzCompare::kFunctionalVsTimed;
};

/// One generated test case: the program plus everything needed to launch it
/// reproducibly (input bytes are stored so shrinking replays identical data).
struct FuzzCase {
  std::uint64_t seed = 0;
  sass::Program prog;
  std::uint32_t in_bytes = 0;   // read-only input buffer (param word 0)
  std::uint32_t out_bytes = 0;  // per-thread output slots (param word 1)
  std::vector<std::uint8_t> in_data;
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::string phase;   // "hazard" | "divergence" | "exception"
  std::string detail;  // probe/memory diff, diagnostics, or what() text
  std::string program;  // disassembly of the shrunken repro
  int original_size = 0;
  int shrunk_size = 0;
};

struct FuzzReport {
  int programs = 0;
  int divergences = 0;
  std::vector<FuzzFailure> failures;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Deterministically generates the test case for `seed`.
FuzzCase generate_case(std::uint64_t seed, const FuzzOptions& opts);

/// Runs one case through both executors; returns a description of the first
/// divergence (register, predicate, or memory), or nullopt on agreement.
/// Throws nothing: executor exceptions are reported as a divergence string.
std::optional<std::string> run_case(const FuzzCase& c, const FuzzOptions& opts);

/// Greedy instruction-deletion shrink; the returned case still diverges.
FuzzCase shrink_case(const FuzzCase& c, const FuzzOptions& opts);

/// Fuzzes `count` seeds starting at `base_seed`: generation, the static
/// hazard detector as a generator/detector cross-check, then the
/// differential run, shrinking any failure to a minimal repro.
FuzzReport run_fuzz(std::uint64_t base_seed, int count, const FuzzOptions& opts = {});

}  // namespace tc::check
