#include "check/fuzz.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <exception>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "check/hazard.hpp"
#include "common/rng.hpp"
#include "device/spec.hpp"
#include "mem/global_mem.hpp"
#include "sass/builder.hpp"
#include "sass/validator.hpp"
#include "sim/functional.hpp"
#include "sim/probe.hpp"
#include "sim/timed_sm.hpp"

namespace tc::check {
namespace {

using sass::CmpOp;
using sass::MemWidth;
using sass::Pred;
using sass::Reg;

// Fixed register map. R0/R1 stay free (RZ aside, some kernels reserve low
// regs); the infrastructure registers below are written once in the prologue
// and never touched by random body ops, so address arithmetic can never race.
constexpr Reg kInBase{2};    // param 0: base of the read-only input buffer
constexpr Reg kOutBase{3};   // param 1: base of the per-thread output slots
constexpr Reg kTid{4};       // S2R TID.X
constexpr Reg kInSlot{5};    // kInBase  + tid * kSlotBytes
constexpr Reg kOutSlot{6};   // kOutBase + tid * kSlotBytes
constexpr Reg kSmSlot{7};    // tid * kSlotBytes (shared-memory byte address)
constexpr int kPoolLo = 8;   // R8..R31: the random value pool
constexpr int kPoolHi = 31;
constexpr Reg kCounter{32};  // loop trip counter
constexpr Reg kScratch{33};  // prologue scratch (tid * kSlotBytes)
constexpr Pred kLanePred{0};  // lane-varying predicate for guarded ops
constexpr Pred kLoopPred{1};  // loop-exit predicate (warp-uniform)

// Every thread owns one 32-byte slot in each memory space. All accesses stay
// inside the owning thread's slot, so programs are free of cross-thread
// memory races regardless of warp count or scheduling.
constexpr int kSlotBytes = 32;

/// One FP16 value from the numerics operand class (FuzzOptions::
/// numeric_operands): the hard corners of the binary16 lattice rather than
/// uniform bit noise, so MMA/half ops exercise subnormal accumulation, NaN
/// canonicalization, signed-zero rules and cross-binade cancellation.
std::uint16_t special_half_bits(Rng& rng) {
  const auto sign = static_cast<std::uint16_t>(rng.next_below(2) != 0 ? 0x8000u : 0u);
  switch (rng.next_below(10)) {
    case 0: return sign;                     // +-0
    case 1: return sign | 0x7C00u;           // +-inf
    case 2:                                  // NaN, random nonzero payload
      return static_cast<std::uint16_t>(
          sign | 0x7C00u | static_cast<std::uint16_t>(1 + rng.next_below(0x3FF)));
    case 3:                                  // subnormal, random mantissa
      return static_cast<std::uint16_t>(
          sign | static_cast<std::uint16_t>(1 + rng.next_below(0x3FF)));
    case 4: return sign | 0x03FFu;           // largest subnormal
    case 5: return sign | 0x0400u;           // smallest normal
    case 6: return sign | 0x7BFFu;           // largest finite
    case 7: {                                // binade ladder: 2^e, e in [-24, 15]
      const int e = static_cast<int>(rng.next_int(-24, 15));
      if (e < -14) {
        return static_cast<std::uint16_t>(sign | (1u << (e + 24)));
      }
      return static_cast<std::uint16_t>(sign | (static_cast<unsigned>(e + 15) << 10));
    }
    case 8:                                  // near one: tie-breaking region
      return static_cast<std::uint16_t>(
          sign | static_cast<std::uint16_t>(0x3C00 + rng.next_int(-4, 4)));
    default: {                               // random finite normal
      const auto exp = static_cast<unsigned>(rng.next_int(1, 30));
      return static_cast<std::uint16_t>(sign | (exp << 10) |
                                        static_cast<unsigned>(rng.next_below(0x400)));
    }
  }
}

std::uint32_t special_half2_word(Rng& rng) {
  return static_cast<std::uint32_t>(special_half_bits(rng)) |
         (static_cast<std::uint32_t>(special_half_bits(rng)) << 16);
}

/// Generates one hazard-free-by-construction program. Soundness rules:
///  * every fixed-latency producer carries stall >= its worst dst latency;
///  * loads take a write barrier; the generator tracks reg -> barrier and
///    emits a wait before any read or overwrite of an in-flight destination;
///  * stores optionally take a read barrier, in which case their sources are
///    tracked the same way (without one, tc::sim captures data at issue, so
///    source reuse is benign — the detector agrees, flagging it warning-only);
///  * all armed barriers are drained before a loop back edge and before EXIT,
///    which makes the linear barrier bookkeeping sound across iterations.
class Generator {
 public:
  Generator(std::uint64_t seed, const FuzzOptions& opts)
      : rng_(seed ^ 0xD1B54A32D192ED03ull),
        opts_(opts),
        b_("fuzz_" + std::to_string(seed)) {
    guard_bar_.fill(-1);
    src_bar_.fill(-1);
    armed_.fill(false);
    bar_rr_ = static_cast<int>(rng_.next_below(sass::kNumBarriers));
  }

  FuzzCase build(std::uint64_t seed) {
    static constexpr std::array<int, 5> kWarpChoices = {1, 1, 2, 2, 4};
    warps_ = opts_.allow_multi_warp
                 ? kWarpChoices[static_cast<std::size_t>(rng_.next_below(5))]
                 : 1;
    threads_ = warps_ * 32;
    use_smem_ = rng_.next_below(4) != 0;
    const bool use_loop = opts_.allow_loops && rng_.next_below(2) == 0;

    b_.threads(static_cast<std::uint32_t>(threads_));
    if (use_smem_) {
      b_.smem(static_cast<std::uint32_t>(threads_ * kSlotBytes));
    }

    prologue();

    const int total =
        static_cast<int>(rng_.next_int(4, std::max(4, opts_.max_body_ops)));
    if (use_loop) {
      const int pre = total / 3;
      const int body = std::max(1, total / 3);
      const int post = std::max(0, total - pre - body);
      for (int i = 0; i < pre; ++i) body_op();
      b_.mov_imm(kCounter, static_cast<std::int32_t>(rng_.next_int(2, 4)))
          .stall(6);
      b_.label("top");
      for (int i = 0; i < body; ++i) body_op();
      drain();
      b_.iadd_imm(kCounter, kCounter, -1).stall(6);
      b_.isetp_imm(kLoopPred, CmpOp::kGt, kCounter, 0).stall(7);
      b_.bra("top").pred(kLoopPred).stall(2);
      for (int i = 0; i < post; ++i) body_op();
    } else {
      for (int i = 0; i < total; ++i) body_op();
    }

    epilogue();

    FuzzCase c;
    c.seed = seed;
    c.prog = b_.finalize();
    c.in_bytes = static_cast<std::uint32_t>(threads_ * kSlotBytes);
    c.out_bytes = c.in_bytes;
    c.in_data.resize(c.in_bytes);
    if (opts_.numeric_operands) {
      // Loaded words must hit the same operand class as the register pool
      // (slot sizes are multiples of 2, so the buffer packs evenly).
      for (std::size_t i = 0; i + 1 < c.in_data.size(); i += 2) {
        const std::uint16_t h = special_half_bits(rng_);
        c.in_data[i] = static_cast<std::uint8_t>(h & 0xFFu);
        c.in_data[i + 1] = static_cast<std::uint8_t>(h >> 8);
      }
    } else {
      for (auto& byte : c.in_data) {
        byte = static_cast<std::uint8_t>(rng_.next_below(256));
      }
    }
    return c;
  }

 private:
  // --- barrier bookkeeping -------------------------------------------------
  [[nodiscard]] std::uint8_t wait_for_read(int lo, int n) const {
    std::uint8_t mask = 0;
    for (int r = lo; r < lo + n; ++r) {
      if (guard_bar_[static_cast<std::size_t>(r)] >= 0) {
        mask |= static_cast<std::uint8_t>(
            1u << guard_bar_[static_cast<std::size_t>(r)]);
      }
    }
    return mask;
  }

  [[nodiscard]] std::uint8_t wait_for_write(int lo, int n) const {
    std::uint8_t mask = wait_for_read(lo, n);
    for (int r = lo; r < lo + n; ++r) {
      if (src_bar_[static_cast<std::size_t>(r)] >= 0) {
        mask |= static_cast<std::uint8_t>(
            1u << src_bar_[static_cast<std::size_t>(r)]);
      }
    }
    return mask;
  }

  void apply_wait(std::uint8_t mask) {
    if (mask == 0) return;
    for (std::size_t r = 0; r < guard_bar_.size(); ++r) {
      if (guard_bar_[r] >= 0 && ((mask >> guard_bar_[r]) & 1u) != 0) {
        guard_bar_[r] = -1;
      }
      if (src_bar_[r] >= 0 && ((mask >> src_bar_[r]) & 1u) != 0) {
        src_bar_[r] = -1;
      }
    }
    for (int i = 0; i < sass::kNumBarriers; ++i) {
      if (((mask >> i) & 1u) != 0) armed_[static_cast<std::size_t>(i)] = false;
    }
  }

  int next_bar() {
    bar_rr_ = (bar_rr_ + 1) % sass::kNumBarriers;
    return bar_rr_;
  }

  /// Applies wait mask + stall to the instruction just emitted and updates
  /// the barrier maps. Call after any operand-specific `pred`/`write_bar`.
  void finish(std::uint8_t wait_mask, int stall_cycles) {
    if (wait_mask != 0) b_.wait(wait_mask);
    b_.stall(stall_cycles);
    apply_wait(wait_mask);
  }

  // --- random picks --------------------------------------------------------
  int stall_for(int latency) {
    return std::min<int>(15, latency + static_cast<int>(rng_.next_below(3)));
  }

  Reg pick_reg() {
    return Reg{static_cast<std::uint8_t>(rng_.next_int(kPoolLo, kPoolHi))};
  }
  Reg pick_pair() {  // even register in [8, 30]
    return Reg{static_cast<std::uint8_t>(kPoolLo + 2 * rng_.next_below(12))};
  }
  Reg pick_quad() {  // quad-aligned register in {8, 12, ..., 28}
    return Reg{static_cast<std::uint8_t>(kPoolLo + 4 * rng_.next_below(6))};
  }
  Reg pick_for_width(int n) {
    return n == 1 ? pick_reg() : n == 2 ? pick_pair() : pick_quad();
  }
  MemWidth pick_width() {
    switch (rng_.next_below(3)) {
      case 0: return MemWidth::k32;
      case 1: return MemWidth::k64;
      default: return MemWidth::k128;
    }
  }
  std::int32_t pick_offset(MemWidth w) {
    const int bytes = sass::width_bytes(w);
    return static_cast<std::int32_t>(
        bytes * rng_.next_below(static_cast<std::uint64_t>(kSlotBytes / bytes)));
  }

  /// Guards the instruction just emitted with the lane predicate, sometimes.
  void maybe_pred() {
    if (rng_.next_below(100) < 30) {
      b_.pred(kLanePred, rng_.next_below(2) == 0);
    }
  }

  // --- prologue / epilogue -------------------------------------------------
  void prologue() {
    b_.mov_param(kInBase, 0).stall(12);
    b_.mov_param(kOutBase, 1).stall(12);
    b_.s2r(kTid, sass::SpecialReg::kTidX).stall(12);
    b_.shl(kScratch, kTid, 5).stall(6);  // tid * kSlotBytes
    b_.iadd3(kInSlot, kInBase, kScratch).stall(6);
    b_.iadd3(kOutSlot, kOutBase, kScratch).stall(6);
    b_.mov(kSmSlot, kScratch).stall(6);
    b_.isetp_imm(kLanePred, CmpOp::kLt, kTid,
                 static_cast<std::int32_t>(rng_.next_int(1, threads_ - 1)))
        .stall(7);
    for (int r = kPoolLo; r <= kPoolHi; ++r) {
      const std::uint32_t word =
          opts_.numeric_operands ? special_half2_word(rng_)
                                 : static_cast<std::uint32_t>(rng_.next_u64());
      b_.mov_imm(Reg{static_cast<std::uint8_t>(r)}, static_cast<std::int32_t>(word))
          .stall(1);
    }
    // Cover the tail of the init chain: the last MOV's consumer can be the
    // very next instruction.
    b_.nop().stall(6);
  }

  void drain() {
    std::uint8_t mask = 0;
    for (int i = 0; i < sass::kNumBarriers; ++i) {
      if (armed_[static_cast<std::size_t>(i)]) {
        mask |= static_cast<std::uint8_t>(1u << i);
      }
    }
    if (mask != 0) {
      b_.nop().wait(mask).stall(1);
      apply_wait(mask);
    }
  }

  void epilogue() {
    drain();
    const int stores = static_cast<int>(rng_.next_int(1, 3));
    for (int i = 0; i < stores; ++i) {
      const MemWidth w = pick_width();
      const Reg src = pick_for_width(sass::width_regs(w));
      b_.stg(w, kOutSlot, src, pick_offset(w)).stall(2);
    }
    b_.exit().stall(1);
  }

  // --- body op emitters ----------------------------------------------------
  void body_op() {
    if (warps_ > 1 && rng_.next_below(100) < 4) {
      // All warps run identical control flow (the loop counter is uniform),
      // so CTA-wide barriers are safe anywhere.
      b_.bar_sync().stall(1);
      return;
    }
    const auto kind = rng_.next_below(100);
    if (kind < 34) {
      alu_op();
    } else if (kind < 48) {
      fma_op();
    } else if (kind < 60) {
      half_op();
    } else if (kind < 66) {
      pred_op();
    } else if (kind < 76 && opts_.allow_mma) {
      mma_op();
    } else if (kind < 84) {
      load(true);
    } else if (kind < 90) {
      store(true);
    } else if (kind < 95) {
      if (use_smem_) load(false); else alu_op();
    } else {
      if (use_smem_) store(false); else alu_op();
    }
  }

  void alu_op() {
    const Reg d = pick_reg();
    const Reg a = pick_reg();
    const Reg b = pick_reg();
    std::uint8_t wm = wait_for_read(a.idx, 1);
    wm |= wait_for_read(b.idx, 1);
    wm |= wait_for_write(d.idx, 1);
    switch (rng_.next_below(8)) {
      case 0: b_.iadd3(d, a, b); break;
      case 1: b_.imad(d, a, b); break;
      case 2: b_.land(d, a, b); break;
      case 3: b_.lor(d, a, b); break;
      case 4: b_.lxor(d, a, b); break;
      case 5: b_.shl(d, a, static_cast<int>(rng_.next_below(31))); break;
      case 6: b_.shr(d, a, static_cast<int>(rng_.next_below(31))); break;
      default: b_.sel(d, kLanePred, a, b); break;
    }
    maybe_pred();
    finish(wm, stall_for(6));
  }

  void fma_op() {
    const Reg d = pick_reg();
    const Reg a = pick_reg();
    const Reg b = pick_reg();
    const Reg c = pick_reg();
    std::uint8_t wm = wait_for_read(a.idx, 1);
    wm |= wait_for_read(b.idx, 1);
    wm |= wait_for_write(d.idx, 1);
    switch (rng_.next_below(3)) {
      case 0: b_.fadd(d, a, b); break;
      case 1: b_.fmul(d, a, b); break;
      default:
        wm |= wait_for_read(c.idx, 1);
        b_.ffma(d, a, b, c);
        break;
    }
    maybe_pred();
    finish(wm, stall_for(6));
  }

  void half_op() {
    const Reg d = pick_reg();
    const Reg a = pick_reg();
    const Reg b = pick_reg();
    const Reg c = pick_reg();
    std::uint8_t wm = wait_for_read(a.idx, 1);
    wm |= wait_for_write(d.idx, 1);
    switch (rng_.next_below(5)) {
      case 0:
        wm |= wait_for_read(b.idx, 1);
        b_.hadd2(d, a, b);
        break;
      case 1:
        wm |= wait_for_read(b.idx, 1);
        b_.hmul2(d, a, b);
        break;
      case 2:
        wm |= wait_for_read(b.idx, 1);
        wm |= wait_for_read(c.idx, 1);
        b_.hfma2(d, a, b, c);
        break;
      case 3: b_.f2f_f16_f32(d, a); break;
      default: b_.f2f_f32_f16(d, a); break;
    }
    maybe_pred();
    finish(wm, stall_for(6));
  }

  void pred_op() {
    const Reg a = pick_reg();
    const std::uint8_t wm = wait_for_read(a.idx, 1);
    const auto cmp = static_cast<CmpOp>(rng_.next_below(6));
    if (rng_.next_below(2) == 0) {
      const Reg b = pick_reg();
      b_.isetp(kLanePred, cmp, a, b);
      finish(static_cast<std::uint8_t>(wm | wait_for_read(b.idx, 1)),
             stall_for(6));
    } else {
      b_.isetp_imm(kLanePred, cmp, a,
                   static_cast<std::int32_t>(rng_.next_int(-64, 64)));
      finish(wm, stall_for(6));
    }
  }

  void mma_op() {
    sass::Opcode op;
    switch (rng_.next_below(4)) {
      case 0: op = sass::Opcode::kHmma1688F16; break;
      case 1: op = sass::Opcode::kHmma1688F32; break;
      case 2: op = sass::Opcode::kHmma884F16; break;
      default: op = sass::Opcode::kImma8816S8; break;
    }
    const sass::MmaRegCounts n = sass::mma_reg_counts(op);
    const Reg d = pick_for_width(n.d);
    const Reg a = pick_for_width(n.a);
    const Reg b = pick_for_width(n.b);
    const bool c_is_rz = rng_.next_below(4) == 0;
    const Reg c = c_is_rz ? sass::RZ : pick_for_width(n.c);
    std::uint8_t wm = wait_for_read(a.idx, n.a);
    wm |= wait_for_read(b.idx, n.b);
    if (!c_is_rz) wm |= wait_for_read(c.idx, n.c);
    wm |= wait_for_write(d.idx, n.d);
    switch (op) {
      case sass::Opcode::kHmma1688F16: b_.hmma_1688_f16(d, a, b, c); break;
      case sass::Opcode::kHmma1688F32: b_.hmma_1688_f32(d, a, b, c); break;
      case sass::Opcode::kHmma884F16: b_.hmma_884_f16(d, a, b, c); break;
      default: b_.imma_8816_s8(d, a, b, c); break;
    }
    // MMA is never predicated: exec_step requires all lanes active.
    finish(wm, stall_for(14));
  }

  void load(bool global) {
    const MemWidth w = pick_width();
    const int n = sass::width_regs(w);
    const Reg d = pick_for_width(n);
    const std::uint8_t wm = wait_for_write(d.idx, n);
    if (global) {
      const auto cache =
          rng_.next_below(4) == 0 ? sass::CacheOp::kCg : sass::CacheOp::kCa;
      b_.ldg(w, d, kInSlot, pick_offset(w), cache);
    } else {
      b_.lds(w, d, kSmSlot, pick_offset(w));
    }
    maybe_pred();
    const int bar = next_bar();
    b_.write_bar(bar);
    finish(wm, static_cast<int>(rng_.next_int(1, 4)));
    for (int i = 0; i < n; ++i) {
      guard_bar_[static_cast<std::size_t>(d.idx + i)] = bar;
    }
    armed_[static_cast<std::size_t>(bar)] = true;
  }

  void store(bool global) {
    const MemWidth w = pick_width();
    const int n = sass::width_regs(w);
    const Reg src = pick_for_width(n);
    const std::uint8_t wm = wait_for_read(src.idx, n);
    if (global) {
      b_.stg(w, kOutSlot, src, pick_offset(w));
    } else {
      b_.sts(w, kSmSlot, src, pick_offset(w));
    }
    maybe_pred();
    if (rng_.next_below(2) == 0) {
      // With a read barrier the sources are protected until the wait; without
      // one, tc::sim's issue-time operand capture makes reuse benign (the
      // hazard detector reports that case as a warning, not an error).
      const int bar = next_bar();
      b_.read_bar(bar);
      finish(wm, static_cast<int>(rng_.next_int(1, 4)));
      for (int i = 0; i < n; ++i) {
        src_bar_[static_cast<std::size_t>(src.idx + i)] = bar;
      }
      armed_[static_cast<std::size_t>(bar)] = true;
    } else {
      finish(wm, static_cast<int>(rng_.next_int(1, 4)));
    }
  }

  Rng rng_;
  const FuzzOptions& opts_;
  sass::KernelBuilder b_;
  int warps_ = 1;
  int threads_ = 32;
  bool use_smem_ = false;
  std::array<int, 256> guard_bar_{};  // reg -> write barrier of in-flight load
  std::array<int, 256> src_bar_{};    // reg -> read barrier of in-flight store
  std::array<bool, sass::kNumBarriers> armed_{};
  int bar_rr_ = 0;
};

/// Removes instruction `at` and re-targets branches across the gap.
sass::Program remove_instruction(const sass::Program& p, int at) {
  sass::Program q = p;
  q.code.erase(q.code.begin() + at);
  for (auto& inst : q.code) {
    if (inst.op == sass::Opcode::kBra && inst.target > at) {
      --inst.target;
    }
  }
  return q;
}

}  // namespace

FuzzCase generate_case(std::uint64_t seed, const FuzzOptions& opts) {
  Generator gen(seed, opts);
  return gen.build(seed);
}

std::optional<std::string> run_case(const FuzzCase& c, const FuzzOptions& opts) {
  try {
    const bool jit_mode = opts.compare == FuzzCompare::kJitVsInterpreter;
    const std::string name_a = jit_mode ? "interpret" : "functional";
    const std::string name_b = jit_mode ? "jit" : "timed";
    sim::StateProbe probe_a;
    sim::StateProbe probe_b;
    probe_a.set_num_regs(c.prog.num_regs);
    probe_b.set_num_regs(c.prog.num_regs);

    // Two memories with identical allocation order; addresses match, but each
    // launch carries its own params so no aliasing is assumed.
    mem::GlobalMemory gmem_f;
    mem::GlobalMemory gmem_t;
    const std::uint32_t in_f = gmem_f.alloc(c.in_bytes);
    const std::uint32_t out_f = gmem_f.alloc(c.out_bytes);
    const std::uint32_t in_t = gmem_t.alloc(c.in_bytes);
    const std::uint32_t out_t = gmem_t.alloc(c.out_bytes);
    gmem_f.write(in_f, std::span(c.in_data));
    gmem_t.write(in_t, std::span(c.in_data));

    sim::Launch launch_f;
    launch_f.program = &c.prog;
    launch_f.params = {in_f, out_f};
    launch_f.numerics = opts.numerics;
    sim::FunctionalExecutor fx(gmem_f, /*host_threads=*/1);
    fx.set_probe(&probe_a);
    fx.run(launch_f);

    sim::Launch launch_t;
    launch_t.program = &c.prog;
    launch_t.params = {in_t, out_t};
    launch_t.numerics = opts.numerics;
    if (jit_mode) {
      launch_t.engine = sim::ExecEngine::kJit;
      sim::FunctionalExecutor jx(gmem_t, /*host_threads=*/1);
      jx.set_probe(&probe_b);
      jx.run(launch_t);
    } else {
      sim::TimedConfig cfg;
      cfg.spec = device::rtx2070();
      cfg.probe = &probe_b;
      cfg.max_cycles = opts.timed_max_cycles;
      sim::TimedSm sm(cfg, gmem_t);
      const sim::CtaCoord cta{0, 0};
      sm.run(launch_t, std::span(&cta, 1));
    }

    const std::string reg_diff =
        sim::StateProbe::diff(probe_a, probe_b, /*max_reports=*/4, name_a, name_b);
    if (!reg_diff.empty()) return reg_diff;

    std::vector<std::uint8_t> buf_f(c.out_bytes);
    std::vector<std::uint8_t> buf_t(c.out_bytes);
    gmem_f.read(out_f, std::span(buf_f));
    gmem_t.read(out_t, std::span(buf_t));
    for (std::uint32_t i = 0; i < c.out_bytes; ++i) {
      if (buf_f[i] != buf_t[i]) {
        return "output byte " + std::to_string(i) + ": " + name_a + " 0x" +
               std::to_string(buf_f[i]) + " vs " + name_b + " " + std::to_string(buf_t[i]);
      }
    }
    // The input buffer must be untouched by both engines.
    buf_f.assign(c.in_bytes, 0);
    buf_t.assign(c.in_bytes, 0);
    gmem_f.read(in_f, std::span(buf_f));
    gmem_t.read(in_t, std::span(buf_t));
    for (std::uint32_t i = 0; i < c.in_bytes; ++i) {
      if (buf_f[i] != c.in_data[i] || buf_t[i] != c.in_data[i]) {
        return "input buffer clobbered at byte " + std::to_string(i);
      }
    }
    return std::nullopt;
  } catch (const std::exception& e) {
    return std::string("exception: ") + e.what();
  }
}

FuzzCase shrink_case(const FuzzCase& c, const FuzzOptions& opts) {
  FuzzCase best = c;
  const auto original = run_case(best, opts);
  if (!original.has_value()) return best;  // nothing to preserve
  // A deletion may not morph the failure class: a register divergence must
  // stay a divergence, not degrade into (say) a null-pointer throw from
  // deleting the address setup.
  const bool want_exception = original->rfind("exception:", 0) == 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = static_cast<int>(best.prog.code.size()) - 1; i >= 0; --i) {
      if (best.prog.code[static_cast<std::size_t>(i)].op ==
          sass::Opcode::kExit) {
        continue;
      }
      FuzzCase cand = best;
      cand.prog = remove_instruction(best.prog, i);
      // The shrunken program must stay a valid, race-free program, or the
      // "divergence" could become a program bug instead of an executor bug.
      try {
        sass::validate(cand.prog);
      } catch (const std::exception&) {
        continue;
      }
      if (sass::has_errors(find_hazards(cand.prog))) continue;
      const auto result = run_case(cand, opts);
      if (result.has_value() &&
          (result->rfind("exception:", 0) == 0) == want_exception) {
        best = std::move(cand);
        changed = true;
      }
    }
  }
  return best;
}

FuzzReport run_fuzz(std::uint64_t base_seed, int count, const FuzzOptions& opts) {
  FuzzReport rep;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    FuzzCase c;
    try {
      c = generate_case(seed, opts);
    } catch (const std::exception& e) {
      rep.failures.push_back({seed, "exception",
                              std::string("generator: ") + e.what(), "", 0, 0});
      continue;
    }
    ++rep.programs;

    // Generator/detector cross-check: the generator claims the program is
    // race-free; the detector must agree, or one of them is wrong.
    const auto diags = find_hazards(c.prog);
    if (sass::has_errors(diags)) {
      std::string detail;
      for (const auto& d : diags) {
        if (d.severity == sass::DiagSeverity::kError) {
          detail += sass::format(d) + "\n";
        }
      }
      rep.failures.push_back({seed, "hazard", detail, c.prog.disassemble(),
                              static_cast<int>(c.prog.code.size()),
                              static_cast<int>(c.prog.code.size())});
      continue;
    }

    const auto div = run_case(c, opts);
    if (!div.has_value()) continue;
    ++rep.divergences;
    const FuzzCase small = shrink_case(c, opts);
    const auto small_div = run_case(small, opts);
    const std::string detail = small_div.value_or(*div);
    const bool is_exception = detail.rfind("exception:", 0) == 0;
    rep.failures.push_back({seed, is_exception ? "exception" : "divergence",
                            detail, small.prog.disassemble(),
                            static_cast<int>(c.prog.code.size()),
                            static_cast<int>(small.prog.code.size())});
  }
  return rep;
}

}  // namespace tc::check
