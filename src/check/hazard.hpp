// Static scoreboard hazard detector.
//
// Walks a sass::Program with the timed executor's latency table and flags
// register hazards that no stall count or scoreboard wait covers:
//
//  * RAW on a fixed-latency producer (ALU/FMA/MMA, including the split
//    low/high HMMA destination writeback) whose consumer issues before the
//    result is committed;
//  * RAW on an in-flight memory load whose write barrier is not waited on
//    (or that has none) before the destination is read;
//  * WAW against an in-flight load — the late writeback would bury the
//    younger value — and against a fixed-latency write whose commit the
//    younger write's commit would invert;
//  * WAR against the source registers of an in-flight memory operation whose
//    read barrier is not waited on. tc::sim captures operands at issue, so
//    this cannot corrupt the simulation — but it races on silicon, so it is
//    reported as a warning rather than an error;
//  * redundant protection: waiting on a scoreboard barrier that is provably
//    already clear (warning).
//
// Analysis is per straight-line segment (segment-local state is forgotten at
// branch targets), with issue times as static lower bounds exactly like
// sass::lint's slack analysis: scoreboard waits and pipe backpressure only
// ever ADD time, so an under-protection finding is a true race whenever no
// wait sits between producer and consumer. Single-block loops are unrolled
// once so loop-carried hazards — including delayed writebacks crossing the
// back edge — surface with the branch-redirect penalty applied.
#pragma once

#include <vector>

#include "sass/diag.hpp"
#include "sass/latency.hpp"
#include "sass/program.hpp"

namespace tc::check {

/// Latency inputs for the analysis. The defaults are the shared latency
/// table (sass/latency.hpp) — the same one the timed simulator executes —
/// so a default-constructed model IS the simulator's model. Tests substitute
/// small deterministic tables.
struct LatencyModel {
  sass::LatencyFn fixed = &sass::fixed_latency;  // cycles until dst+off is readable
  int branch_redirect = sass::kBranchRedirectCycles;  // min issue gap across a taken branch
  int predicate_latency = sass::kPredicateLatency;  // ISETP issue -> predicate visibility
};

/// The timed simulator's own latency table (sim::fixed_latency et al.).
LatencyModel sim_latency_model();

/// Runs the detector and returns structured findings, program order,
/// errors and warnings interleaved. Empty = provably clean schedule (within
/// the segment-local scope documented above).
std::vector<sass::Diag> find_hazards(const sass::Program& prog, const LatencyModel& lat);

/// Convenience overload using sim_latency_model().
std::vector<sass::Diag> find_hazards(const sass::Program& prog);

}  // namespace tc::check
