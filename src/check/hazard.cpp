#include "check/hazard.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <tuple>
#include <vector>

#include "sim/pipes.hpp"

namespace tc::check {

using sass::Diag;
using sass::DiagSeverity;
using sass::Instruction;
using sass::Opcode;

// The simulator's constants are themselves aliases of the shared table, so
// these pins are structural: they fail to compile if sim/pipes ever forks
// its latency values away from the table this detector analyzes against.
static_assert(sim::kAluLatency == sass::kAluLatency);
static_assert(sim::kFmaLatency == sass::kFmaLatency);
static_assert(sim::kSpecialLatency == sass::kSpecialLatency);
static_assert(sim::kMmaLatencyLow == sass::kMmaLatencyLow);
static_assert(sim::kMmaLatencyHigh == sass::kMmaLatencyHigh);
static_assert(sim::kBranchRedirectCycles == sass::kBranchRedirectCycles);
static_assert(sim::kAluLatency == sass::kPredicateLatency,
              "predicates travel the ALU path; the detector and the timed SM "
              "must agree on when an ISETP result becomes visible");

LatencyModel sim_latency_model() {
  return {&sim::fixed_latency, sim::kBranchRedirectCycles, sim::kAluLatency};
}

namespace {

struct RegRange {
  int lo = 0;
  int count = 0;
};

bool overlaps(const RegRange& a, const RegRange& b) {
  return a.count > 0 && b.count > 0 && a.lo < b.lo + b.count && b.lo < a.lo + a.count;
}

bool covers(const RegRange& r, int reg) { return r.count > 0 && reg >= r.lo && reg < r.lo + r.count; }

std::string range_name(const RegRange& r) {
  std::string name = "R";
  name += std::to_string(r.lo);
  if (r.count > 1) {
    name += "..R";
    name += std::to_string(r.lo + r.count - 1);
  }
  return name;
}

bool is_mio(Opcode op) { return sass::pipe_class(op) == sass::PipeClass::kMio; }

/// Registers written through the fixed-latency (non-MIO) path.
RegRange fixed_write_range(const Instruction& inst) {
  if (inst.dst.is_rz()) return {};
  if (is_mio(inst.op) || sass::pipe_class(inst.op) == sass::PipeClass::kControl) return {};
  if (sass::is_mma(inst.op)) return {inst.dst.idx, sass::mma_reg_counts(inst.op).d};
  return {inst.dst.idx, 1};
}

/// Destination range of a memory load (written at MIO data arrival).
RegRange load_dst_range(const Instruction& inst) {
  if ((inst.op == Opcode::kLdg || inst.op == Opcode::kLds) && !inst.dst.is_rz()) {
    return {inst.dst.idx, sass::width_regs(inst.width)};
  }
  return {};
}

/// Register ranges read at issue time (operand collectors).
std::array<RegRange, 3> issue_read_ranges(const Instruction& inst) {
  std::array<RegRange, 3> out{};
  int slot = 0;
  const auto add = [&](sass::Reg r, int count) {
    if (!r.is_rz() && count > 0) out[static_cast<std::size_t>(slot++)] = {r.idx, count};
  };
  switch (inst.op) {
    case Opcode::kLdg:
    case Opcode::kLds:
      add(inst.srca, 1);
      break;
    case Opcode::kStg:
    case Opcode::kSts:
      add(inst.srca, 1);
      add(inst.srcb, sass::width_regs(inst.width));
      break;
    default:
      if (sass::pipe_class(inst.op) == sass::PipeClass::kControl) break;
      if (sass::is_mma(inst.op)) {
        const auto rc = sass::mma_reg_counts(inst.op);
        add(inst.srca, rc.a);
        add(inst.srcb, rc.b);
        add(inst.srcc, rc.c);
      } else {
        add(inst.srca, 1);
        if (!inst.has_imm) add(inst.srcb, 1);
        add(inst.srcc, 1);
      }
      break;
  }
  return out;
}

/// Source registers an in-flight MIO op still holds (address + store data).
/// tc::sim reads them at issue, so overwriting early is a silicon-only race.
std::vector<RegRange> mio_src_ranges(const Instruction& inst) {
  std::vector<RegRange> out;
  if (!inst.srca.is_rz()) out.push_back({inst.srca.idx, 1});
  if ((inst.op == Opcode::kStg || inst.op == Opcode::kSts) && !inst.srcb.is_rz()) {
    out.push_back({inst.srcb.idx, sass::width_regs(inst.width)});
  }
  return out;
}

struct PendingFixed {
  int pc = 0;
  RegRange range;
  std::int64_t issue = 0;
  int wait_seq = 0;  // wait counter when issued; != current means "unprovable"
};

struct PendingPred {
  int pc = 0;
  int pred = 7;
  std::int64_t issue = 0;
  int wait_seq = 0;
};

struct InFlightMio {
  int pc = 0;
  RegRange dst;                 // un-retired load destination (count 0 for stores)
  std::vector<RegRange> srcs;   // held until the read barrier is waited
  std::uint8_t write_barrier = sass::kNoBarrier;
  std::uint8_t read_barrier = sass::kNoBarrier;

  [[nodiscard]] bool spent() const {
    return dst.count == 0 && srcs.empty() && write_barrier == sass::kNoBarrier &&
           read_barrier == sass::kNoBarrier;
  }
};

enum class BarState { kUnknown, kClear };

class SegmentWalker {
 public:
  SegmentWalker(const sass::Program& prog, const LatencyModel& lat, std::vector<Diag>& out)
      : prog_(prog), lat_(lat), out_(out) {}

  /// Analyzes [s, e]; `entry_known_clear` is true only for the program entry
  /// (all scoreboards start at zero). Self-loops are unrolled once so
  /// loop-carried pairs surface; duplicates are folded by the dedupe set.
  void run(int s, int e, bool entry_known_clear) {
    pending_.clear();
    preds_.clear();
    inflight_.clear();
    bars_.fill(entry_known_clear ? BarState::kClear : BarState::kUnknown);
    wait_seq_ = 0;
    t_ = 0;

    const auto& last = prog_.code[static_cast<std::size_t>(e)];
    const bool self_loop = last.op == Opcode::kBra && last.target == s;
    const int iterations = self_loop ? 2 : 1;
    for (int iter = 0; iter < iterations; ++iter) {
      for (int pc = s; pc <= e; ++pc) {
        step(pc);
      }
    }
  }

 private:
  void emit(DiagSeverity sev, const std::string& kind, int producer, int consumer,
            const std::string& message) {
    if (!seen_.insert({kind, producer, consumer}).second) return;
    out_.push_back({sev, kind, producer, consumer, message});
  }

  void step(int pc) {
    const Instruction& inst = prog_.code[static_cast<std::size_t>(pc)];

    // --- scoreboard waits ---------------------------------------------------
    if (inst.ctrl.wait_mask != 0) {
      for (int b = 0; b < sass::kNumBarriers; ++b) {
        if (((inst.ctrl.wait_mask >> b) & 1u) == 0) continue;
        bool armed = false;
        for (auto& op : inflight_) {
          if (op.write_barrier == b) {
            op.dst = {};  // data arrived: destination is committed
            op.write_barrier = sass::kNoBarrier;
            armed = true;
          }
          if (op.read_barrier == b) {
            op.srcs.clear();  // sources released
            op.read_barrier = sass::kNoBarrier;
            armed = true;
          }
        }
        std::erase_if(inflight_, [](const InFlightMio& op) { return op.spent(); });
        if (!armed && bars_[static_cast<std::size_t>(b)] == BarState::kClear) {
          emit(DiagSeverity::kWarning, "redundant-wait", -1, pc,
               sass::opcode_name(inst.op) + " waits on B" + std::to_string(b) +
                   ", which is provably clear at this point; the wait costs nothing but "
                   "protects nothing");
        }
        bars_[static_cast<std::size_t>(b)] = BarState::kClear;
      }
      ++wait_seq_;  // time past this point is no longer a provable lower bound
    }
    if (inst.op == Opcode::kBar) ++wait_seq_;  // CTA sync adds unknown delay

    // --- reads at issue -----------------------------------------------------
    for (const RegRange& rr : issue_read_ranges(inst)) {
      if (rr.count == 0) continue;
      // In-flight loads: any overlap is a race regardless of distance — the
      // data arrival time is unbounded without the barrier wait.
      for (const auto& op : inflight_) {
        if (!overlaps(op.dst, rr)) continue;
        const std::string why =
            op.write_barrier != sass::kNoBarrier
                ? "no wait on B" + std::to_string(op.write_barrier) + " covers the read"
                : "the load carries no write barrier, so the read can never be synchronized";
        emit(DiagSeverity::kError, "raw-load", op.pc, pc,
             sass::opcode_name(inst.op) + " reads " + range_name(rr) + " while the " +
                 sass::opcode_name(prog_.code[static_cast<std::size_t>(op.pc)].op) + " at pc " +
                 std::to_string(op.pc) + " is still in flight to " + range_name(op.dst) + "; " +
                 why);
      }
      // Fixed-latency producers: for each register, only the newest pending
      // write determines the value this read observes.
      for (int reg = rr.lo; reg < rr.lo + rr.count; ++reg) {
        if (covered_by_inflight_load(reg)) continue;  // reported above
        for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
          if (!covers(it->range, reg)) continue;
          if (it->wait_seq == wait_seq_) {
            const Instruction& prod = prog_.code[static_cast<std::size_t>(it->pc)];
            const int lat = lat_.fixed(prod, reg - it->range.lo);
            const std::int64_t gap = t_ - it->issue;
            if (gap < lat) {
              emit(DiagSeverity::kError, "raw-fixed", it->pc, pc,
                   sass::opcode_name(inst.op) + " reads R" + std::to_string(reg) + " only " +
                       std::to_string(gap) + " cycles after the " + sass::opcode_name(prod.op) +
                       " at pc " + std::to_string(it->pc) + " issued, but the result lands " +
                       std::to_string(lat) + " cycles in; the read observes the stale value");
            }
          }
          break;  // newest covering write found
        }
      }
    }
    // Predicate reads: the guard, and SEL's selector.
    check_pred_read(inst, pc, inst.guard.idx, "guard");
    if (inst.op == Opcode::kSel) check_pred_read(inst, pc, inst.pdst.idx, "selector");

    // --- writes -------------------------------------------------------------
    const RegRange fw = fixed_write_range(inst);
    const RegRange ld = load_dst_range(inst);
    const RegRange w = fw.count > 0 ? fw : ld;
    if (w.count > 0) {
      for (const auto& op : inflight_) {
        if (overlaps(op.dst, w)) {
          emit(DiagSeverity::kError, "waw-load", op.pc, pc,
               sass::opcode_name(inst.op) + " writes " + range_name(w) + " while the load at pc " +
                   std::to_string(op.pc) + " is still in flight to " + range_name(op.dst) +
                   "; the late writeback would bury the younger value");
        }
        for (const auto& sr : op.srcs) {
          if (!overlaps(sr, w)) continue;
          const std::string sync =
              op.read_barrier != sass::kNoBarrier
                  ? "wait on B" + std::to_string(op.read_barrier) + " first"
                  : "the op carries no read barrier";
          emit(DiagSeverity::kWarning, "war-mio", op.pc, pc,
               sass::opcode_name(inst.op) + " overwrites " + range_name(w) +
                   " while the memory op at pc " + std::to_string(op.pc) +
                   " may still hold it as a source (" + sync +
                   "); safe in tc::sim, a race on silicon");
        }
      }
      if (fw.count > 0) {
        // WAW commit inversion between two fixed-latency writes.
        for (int reg = fw.lo; reg < fw.lo + fw.count; ++reg) {
          for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
            if (!covers(it->range, reg)) continue;
            if (it->wait_seq == wait_seq_) {
              const Instruction& prod = prog_.code[static_cast<std::size_t>(it->pc)];
              const int lat_old = lat_.fixed(prod, reg - it->range.lo);
              const int lat_new = lat_.fixed(inst, reg - fw.lo);
              if (t_ + lat_new < it->issue + lat_old) {
                emit(DiagSeverity::kError, "waw-fixed", it->pc, pc,
                     sass::opcode_name(inst.op) + " commits R" + std::to_string(reg) + " at +" +
                         std::to_string(t_ + lat_new) + " but the older " +
                         sass::opcode_name(prod.op) + " at pc " + std::to_string(it->pc) +
                         " commits at +" + std::to_string(it->issue + lat_old) +
                         "; the writebacks invert and the stale value wins");
              }
            }
            break;
          }
        }
      }
    }

    // --- state update -------------------------------------------------------
    if (is_mio(inst.op)) {
      InFlightMio op;
      op.pc = pc;
      op.dst = ld;
      op.srcs = mio_src_ranges(inst);
      op.write_barrier = inst.ctrl.write_barrier;
      op.read_barrier = inst.ctrl.read_barrier;
      // Without a read barrier the sources are only at risk on silicon until
      // the op drains; tracking them forever would flag every temp reuse, so
      // hold them only while a barrier could still be waited on.
      if (op.read_barrier == sass::kNoBarrier) op.srcs.clear();
      if (!op.spent()) inflight_.push_back(std::move(op));
    } else if (fw.count > 0) {
      pending_.push_back({pc, fw, t_, wait_seq_});
    }
    if (inst.op == Opcode::kIsetp && !inst.pdst.is_pt()) {
      preds_.push_back({pc, inst.pdst.idx, t_, wait_seq_});
    }

    // --- advance ------------------------------------------------------------
    const int stall = std::max<int>(inst.ctrl.stall, 1);
    t_ += inst.op == Opcode::kBra ? std::max(stall, lat_.branch_redirect) : stall;
  }

  [[nodiscard]] bool covered_by_inflight_load(int reg) const {
    for (const auto& op : inflight_) {
      if (covers(op.dst, reg)) return true;
    }
    return false;
  }

  void check_pred_read(const Instruction& inst, int pc, std::uint8_t pred, const char* what) {
    if (pred == 7) return;  // PT
    for (auto it = preds_.rbegin(); it != preds_.rend(); ++it) {
      if (it->pred != pred) continue;
      if (it->wait_seq == wait_seq_) {
        const std::int64_t gap = t_ - it->issue;
        if (gap < lat_.predicate_latency) {
          emit(DiagSeverity::kError, "raw-pred", it->pc, pc,
               sass::opcode_name(inst.op) + " reads P" + std::to_string(pred) + " as " + what +
                   " only " + std::to_string(gap) + " cycles after the ISETP at pc " +
                   std::to_string(it->pc) + ", but predicates land " +
                   std::to_string(lat_.predicate_latency) + " cycles in");
        }
      }
      return;  // newest write to this predicate decides
    }
  }

  const sass::Program& prog_;
  const LatencyModel& lat_;
  std::vector<Diag>& out_;
  std::set<std::tuple<std::string, int, int>> seen_;

  std::vector<PendingFixed> pending_;
  std::vector<PendingPred> preds_;
  std::vector<InFlightMio> inflight_;
  std::array<BarState, sass::kNumBarriers> bars_{};
  int wait_seq_ = 0;
  std::int64_t t_ = 0;
};

}  // namespace

std::vector<Diag> find_hazards(const sass::Program& prog, const LatencyModel& lat) {
  std::vector<Diag> out;
  const int n = static_cast<int>(prog.code.size());
  if (n == 0 || lat.fixed == nullptr) return out;

  // Segment leaders: entry, branch targets, and fall-through successors of
  // control transfers. BAR.SYNC and NOP do not end a segment — they cannot
  // redirect control, and keeping the segment alive across them is what lets
  // waits carried on NOPs count as protection.
  std::vector<char> leader(static_cast<std::size_t>(n), 0);
  leader[0] = 1;
  for (int pc = 0; pc < n; ++pc) {
    const auto& inst = prog.code[static_cast<std::size_t>(pc)];
    if (inst.op == Opcode::kBra && inst.target >= 0 && inst.target < n) {
      leader[static_cast<std::size_t>(inst.target)] = 1;
    }
    if ((inst.op == Opcode::kBra || inst.op == Opcode::kExit) && pc + 1 < n) {
      leader[static_cast<std::size_t>(pc + 1)] = 1;
    }
  }

  SegmentWalker walker(prog, lat, out);
  int s = 0;
  while (s < n) {
    int e = s;
    while (e + 1 < n && !leader[static_cast<std::size_t>(e + 1)]) ++e;
    walker.run(s, e, /*entry_known_clear=*/s == 0);
    s = e + 1;
  }
  return out;
}

std::vector<Diag> find_hazards(const sass::Program& prog) {
  return find_hazards(prog, sim_latency_model());
}

}  // namespace tc::check
