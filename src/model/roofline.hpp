// Roofline model (paper Fig. 3).
//
// Attainable FLOP/s = min(compute peak, arithmetic intensity x memory
// bandwidth). The paper draws two roofs (Tensor Core and FP16 units) against
// the *measured* DRAM bandwidth, and places the thread-block blocking sizes
// at their computation intensities b_m*b_n/(b_m+b_n) FLOP/byte.
#pragma once

#include <vector>

#include "device/spec.hpp"

namespace tc::model {

/// Computation intensity (FLOP per byte of DRAM traffic) of a b_m x b_n
/// thread-block tile: 2*bm*bn*bk ops per (bm+bn)*bk half elements loaded.
[[nodiscard]] double block_intensity(int bm, int bn);

/// FLOP/s attainable at `intensity` under `bw_bytes_per_s` and `peak_flops`.
[[nodiscard]] double attainable_flops(double intensity, double bw_bytes_per_s,
                                      double peak_flops);

/// Intensity at which the roofline ridges (memory-bound below, compute above).
[[nodiscard]] double ridge_intensity(double bw_bytes_per_s, double peak_flops);

struct RooflinePoint {
  double intensity = 0.0;
  double tensor_flops = 0.0;  // attainable with Tensor Cores
  double fp16_flops = 0.0;    // attainable with FP16 units
};

/// Samples both roofs of `spec` (using measured DRAM bandwidth) at the given
/// intensities, e.g. the blocking sizes of Section VI-A.
[[nodiscard]] std::vector<RooflinePoint> roofline_series(const device::DeviceSpec& spec,
                                                         const std::vector<double>& intensities);

}  // namespace tc::model
