// Cross-validation of the wave-composition model against the cycle-level
// multi-SM device simulator.
//
// WavePerf composes full-device time from a single-SM steady-state
// measurement plus three analytic assumptions: the fair-share bandwidth
// split, the l2_reuse hit rate, and ceil-quantized waves. sim::TimedDevice
// makes none of those assumptions — contention, reuse and tail waves emerge
// from simulating every SM. validate_wave() runs one kernel on both engines
// at the same shape and reports the headline cycle disagreement together
// with per-component deltas (L2 hit rate, DRAM traffic, tensor utilization,
// tail imbalance), so a failing tolerance check in tests/test_device_xval
// names the assumption that broke, not just the number.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "common/matrix.hpp"
#include "device/spec.hpp"
#include "model/l2_reuse.hpp"
#include "model/wave_perf.hpp"
#include "sass/program.hpp"

namespace tc::model {

/// A kernel family under validation: generator plus the blocking and launch
/// parameters the model needs. Generic over kernel_gen's families (the hgemm
/// configs and wmma_naive), which share the [A, B^T, C] param contract and
/// the (n/bn, m/bm) grid convention.
struct ValidateKernelInput {
  std::function<sass::Program(const GemmShape&)> make_kernel;
  std::string name;
  int bm = 256;
  int bn = 256;
  int bk = 32;
  int ctas_per_sm = 1;
  LaunchOrder order = LaunchOrder::kRowMajor;
  int swizzle_max_grid_x = std::numeric_limits<int>::max();
  /// Column-panel width when order == kSupertile; ignored otherwise.
  int supertile_width = 8;
  /// When true (the default), the device runs with forced_l2_hit_rate set to
  /// the model's l2_reuse prediction, so the comparison isolates the wave
  /// composition, bandwidth contention and scheduling. When false, L2 hits
  /// emerge from the shared sector cache — at validation-scale shapes the
  /// whole A+B working set fits in L2, so the emergent rate runs ~2x the
  /// η-derated analytic rate (calibrated for paper-scale working sets) and
  /// DRAM-bound kernels diverge by ~20-70%. See docs/device_sim.md.
  bool pin_l2_hit_rate = true;
};

struct WaveValidation {
  // Model side.
  SteadyState steady;
  WaveResult wave;
  double model_cycles = 0.0;
  double model_l2_hit_rate = 0.0;
  /// Reuse-distance sampler's hit-rate prediction for the same launch —
  /// the trace-derived counterpart of model_l2_hit_rate, compared against
  /// device_l2_hit_rate by the l2_xval suite (unpinned runs only).
  double sampler_l2_hit_rate = 0.0;
  double model_dram_bytes = 0.0;  // l2_reuse A+B traffic + C stores
  double model_tensor_util = 0.0;
  double dram_efficiency = 1.0;
  // Device side (emergent).
  std::uint64_t device_cycles = 0;
  double device_l2_hit_rate = 0.0;
  double device_dram_bytes = 0.0;
  double device_tensor_util = 0.0;
  /// Per-SM finish-time spread: 1 - min/max SM cycles. Nonzero = tail wave.
  double tail_imbalance = 0.0;
  int sms_used = 0;
  // Headline: (device - model) / device.
  double rel_error = 0.0;

  /// Structured per-component comparison for failure messages.
  [[nodiscard]] std::string report() const;
};

/// Runs `kin`'s kernel at `shape` on both WavePerf (surrogate steady state +
/// composition, exactly the PerfEstimator pipeline) and sim::TimedDevice
/// (full multi-SM simulation, skip_mma_math) and returns the comparison.
/// Kernel cycles are compared; WavePerf's fixed host launch overhead is
/// excluded from both sides.
[[nodiscard]] WaveValidation validate_wave(const device::DeviceSpec& spec,
                                           const ValidateKernelInput& kin,
                                           const GemmShape& shape);

}  // namespace tc::model
