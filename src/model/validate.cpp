#include "model/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "mem/global_mem.hpp"
#include "model/stack_distance.hpp"
#include "sim/launch.hpp"
#include "sim/timed_device.hpp"
#include "sim/timed_sm.hpp"

namespace tc::model {

namespace {

/// One single-SM steady-state surrogate run: `ctas_per_sm` resident CTAs,
/// k = iterations * bk, fair bandwidth share, model-forced L2 hit rate.
/// This mirrors core::run_steady_surrogate but is generic over the kernel
/// generator (tc_model cannot depend on tc_core).
/// The resident CTAs stack along grid_x (one row), matching TimedDevice's
/// depth-first dispenser (each SM takes its resident CTAs consecutively from
/// the x-major source): co-residents are row neighbours sharing the A slab.
/// Stacking them along grid_y instead would let the L1 deduplicate their
/// (identical) B columns — halving the surrogate's DRAM traffic for
/// smem-less kernels like wmma_naive and skewing the steady state fast.
sim::TimedStats run_surrogate(const device::DeviceSpec& spec, const ValidateKernelInput& kin,
                              int iterations, double l2_hit_rate, double dram_efficiency) {
  const GemmShape s{
      static_cast<std::size_t>(kin.bm),
      static_cast<std::size_t>(kin.bn) * static_cast<std::size_t>(kin.ctas_per_sm),
      static_cast<std::size_t>(kin.bk) * static_cast<std::size_t>(iterations)};
  const sass::Program prog = kin.make_kernel(s);

  sim::TimedConfig tc;
  tc.spec = spec;
  tc.dram_bytes_per_cycle = spec.dram_bytes_per_cycle_per_sm() * dram_efficiency;
  tc.l2_bytes_per_cycle = spec.l2_bytes_per_cycle_per_sm();
  tc.forced_l2_hit_rate = l2_hit_rate;
  tc.skip_mma_math = true;

  mem::GlobalMemory gmem;
  sim::Launch launch;
  launch.program = &prog;
  launch.grid_x = static_cast<std::uint32_t>(kin.ctas_per_sm);
  launch.grid_y = 1;
  const auto a_addr = gmem.alloc(s.m * s.k * 2);
  const auto b_addr = gmem.alloc(s.n * s.k * 2);
  const auto c_addr = gmem.alloc(s.m * s.n * 2);
  launch.params = {a_addr, b_addr, c_addr};

  std::vector<sim::CtaCoord> ctas;
  for (int i = 0; i < kin.ctas_per_sm; ++i) {
    ctas.push_back({static_cast<std::uint32_t>(i), 0});
  }
  sim::TimedSm sm(tc, gmem);
  return sm.run(launch, ctas);
}

}  // namespace

WaveValidation validate_wave(const device::DeviceSpec& spec, const ValidateKernelInput& kin,
                             const GemmShape& shape) {
  TC_CHECK(kin.make_kernel != nullptr, "validate_wave needs a kernel generator");
  TC_CHECK(shape.m % static_cast<std::size_t>(kin.bm) == 0 &&
               shape.n % static_cast<std::size_t>(kin.bn) == 0 &&
               shape.k % static_cast<std::size_t>(kin.bk) == 0,
           "shape must tile evenly for cross-validation");

  WaveValidation v;
  const auto grid_x = shape.n / static_cast<std::size_t>(kin.bn);
  const auto grid_y = shape.m / static_cast<std::size_t>(kin.bm);
  const double iters = std::ceil(static_cast<double>(shape.k) / kin.bk);
  const int partitions = spec.processing_blocks_per_sm;

  // --- model side: the PerfEstimator pipeline ------------------------------
  L2ReuseInput reuse_in;
  reuse_in.bm = kin.bm;
  reuse_in.bn = kin.bn;
  reuse_in.bk = kin.bk;
  reuse_in.grid_x = grid_x;
  reuse_in.grid_y = grid_y;
  reuse_in.wave_ctas = spec.num_sms * kin.ctas_per_sm;
  reuse_in.order = kin.order;
  reuse_in.swizzle_max_grid_x = kin.swizzle_max_grid_x;
  reuse_in.supertile_width = kin.supertile_width;
  reuse_in.k_iters = iters;
  reuse_in.l2_capacity = spec.l2_size_bytes;
  // The closed form stays the pinning operating point (the wmma tolerance
  // bands were calibrated against it); the trace-derived sampler prediction
  // rides along for the l2_xval comparison against the emergent rate.
  const L2Reuse reuse = l2_reuse(reuse_in);
  v.model_l2_hit_rate = reuse.ldg_l2_hit_rate;
  v.sampler_l2_hit_rate = sample_l2_reuse(reuse_in).ldg_l2_hit_rate;
  v.dram_efficiency = dram_row_efficiency(static_cast<double>(shape.k) * 2.0);

  const int it1 = 6;
  const int it2 = 14;
  const auto s1 = run_surrogate(spec, kin, it1, v.model_l2_hit_rate, v.dram_efficiency);
  const auto s2 = run_surrogate(spec, kin, it2, v.model_l2_hit_rate, v.dram_efficiency);
  v.steady.cycles_per_iter =
      std::max((static_cast<double>(s2.cycles) - static_cast<double>(s1.cycles)) / (it2 - it1),
               1.0);
  v.steady.overhead_cycles =
      std::max(static_cast<double>(s1.cycles) - v.steady.cycles_per_iter * it1, 0.0);
  v.model_tensor_util = static_cast<double>(s2.tensor_busy) /
                        (static_cast<double>(s2.cycles) * partitions);

  WaveInput wi;
  wi.spec = spec;
  wi.shape = shape;
  wi.bm = kin.bm;
  wi.bn = kin.bn;
  wi.bk = kin.bk;
  wi.ctas_per_sm = kin.ctas_per_sm;
  wi.steady = v.steady;
  v.wave = compose(wi);
  v.model_cycles = v.wave.kernel_cycles;
  // Model-predicted DRAM traffic: l2_reuse's per-wave-iteration A+B bytes
  // over all waves and iterations, plus the C writeback.
  v.model_dram_bytes = reuse.dram_bytes_per_wave_iter * iters * v.wave.waves +
                       static_cast<double>(shape.m) * static_cast<double>(shape.n) * 2.0;

  // --- device side: full multi-SM simulation -------------------------------
  const sass::Program prog = kin.make_kernel(shape);
  mem::GlobalMemory gmem;
  sim::Launch launch;
  launch.program = &prog;
  launch.grid_x = static_cast<std::uint32_t>(grid_x);
  launch.grid_y = static_cast<std::uint32_t>(grid_y);
  launch.launch_order = kin.order;
  launch.supertile_width = kin.supertile_width;
  const auto a_addr = gmem.alloc(shape.m * shape.k * 2);
  const auto b_addr = gmem.alloc(shape.n * shape.k * 2);
  const auto c_addr = gmem.alloc(shape.m * shape.n * 2);
  launch.params = {a_addr, b_addr, c_addr};

  sim::TimedDeviceConfig dc;
  dc.spec = spec;
  dc.ctas_per_sm = kin.ctas_per_sm;
  dc.skip_mma_math = true;
  if (kin.pin_l2_hit_rate) dc.forced_l2_hit_rate = v.model_l2_hit_rate;
  sim::TimedDevice dev(dc, gmem);
  const sim::DeviceResult dr = dev.run(launch);

  v.device_cycles = dr.device_cycles;
  v.device_l2_hit_rate = dr.l2_hit_rate;
  v.device_dram_bytes = dr.total.dram_bytes;
  v.sms_used = dr.sms_used;
  v.device_tensor_util =
      static_cast<double>(dr.total.tensor_busy) /
      (static_cast<double>(dr.device_cycles) * dr.sms_used * partitions);
  std::uint64_t min_cycles = dr.device_cycles;
  for (const auto& s : dr.per_sm) min_cycles = std::min(min_cycles, s.cycles);
  v.tail_imbalance =
      dr.device_cycles == 0
          ? 0.0
          : 1.0 - static_cast<double>(min_cycles) / static_cast<double>(dr.device_cycles);

  v.rel_error = (static_cast<double>(v.device_cycles) - v.model_cycles) /
                static_cast<double>(v.device_cycles);
  return v;
}

std::string WaveValidation::report() const {
  std::ostringstream os;
  os.precision(4);
  os << "wave-model cross-validation: model=" << model_cycles
     << " cy, device=" << device_cycles << " cy, rel_error=" << rel_error * 100.0 << "%\n";
  os << "  component         model        device\n";
  os << "  waves             " << wave.waves << "         tail_imbalance=" << tail_imbalance * 100.0
     << "%\n";
  os << "  l2_hit_rate       " << model_l2_hit_rate << "       " << device_l2_hit_rate
     << " (sampler=" << sampler_l2_hit_rate << ")\n";
  os << "  dram_bytes        " << model_dram_bytes << "    " << device_dram_bytes << "\n";
  os << "  tensor_util       " << model_tensor_util << "       " << device_tensor_util << "\n";
  os << "  steady: cycles_per_iter=" << steady.cycles_per_iter
     << " overhead=" << steady.overhead_cycles << " (dram_eff=" << dram_efficiency
     << ", sms_used=" << sms_used << ")\n";
  return os.str();
}

}  // namespace tc::model
