#include "model/roofline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tc::model {

double block_intensity(int bm, int bn) {
  TC_CHECK(bm > 0 && bn > 0, "blocking sizes must be positive");
  // 2*bm*bn*bk FLOP per (bm+bn)*bk elements * 2 bytes each.
  return static_cast<double>(bm) * bn / (static_cast<double>(bm) + bn);
}

double attainable_flops(double intensity, double bw_bytes_per_s, double peak_flops) {
  return std::min(peak_flops, intensity * bw_bytes_per_s);
}

double ridge_intensity(double bw_bytes_per_s, double peak_flops) {
  return peak_flops / bw_bytes_per_s;
}

std::vector<RooflinePoint> roofline_series(const device::DeviceSpec& spec,
                                           const std::vector<double>& intensities) {
  std::vector<RooflinePoint> out;
  out.reserve(intensities.size());
  const double bw = spec.dram_bw_gbps * 1e9;
  for (const double i : intensities) {
    out.push_back({i, attainable_flops(i, bw, spec.tensor_peak_flops()),
                   attainable_flops(i, bw, spec.fp16_peak_flops())});
  }
  return out;
}

}  // namespace tc::model
