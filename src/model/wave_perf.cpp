#include "model/wave_perf.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tc::model {

WaveResult compose(const WaveInput& in) {
  TC_CHECK(in.steady.cycles_per_iter > 0.0, "steady-state cycles required");
  TC_CHECK(in.shape.m > 0 && in.shape.n > 0 && in.shape.k > 0, "empty GEMM shape");

  WaveResult out;
  out.grid_x = (in.shape.n + static_cast<std::uint64_t>(in.bn) - 1) /
               static_cast<std::uint64_t>(in.bn);
  out.grid_y = (in.shape.m + static_cast<std::uint64_t>(in.bm) - 1) /
               static_cast<std::uint64_t>(in.bm);
  const double total_ctas = static_cast<double>(out.grid_x) * static_cast<double>(out.grid_y);
  const double wave_ctas = static_cast<double>(in.spec.num_sms) * in.ctas_per_sm;
  out.waves = std::ceil(total_ctas / wave_ctas);

  const double iters =
      std::ceil(static_cast<double>(in.shape.k) / static_cast<double>(in.bk));
  const double wave_cycles = in.steady.overhead_cycles + iters * in.steady.cycles_per_iter;
  out.kernel_cycles = out.waves * wave_cycles;
  out.seconds = in.spec.cycles_to_seconds(out.kernel_cycles) + in.launch_overhead_us * 1e-6;
  out.tflops = in.shape.flops() / out.seconds / 1e12;
  return out;
}

}  // namespace tc::model
