// Inter-CTA L2 reuse model.
//
// A single simulated SM cannot observe the L2 hits produced by *other* SMs
// fetching the same A-row / B-column tiles. This model computes, for one
// wave of concurrently resident CTAs, how much of the per-iteration tile
// traffic must come from DRAM versus L2, given:
//
//  * the CTA launch order: row-major (naive) or swizzled (an L2-friendly
//    rectangular patch — the paper's future-work item, implemented here);
//  * a sharing efficiency η < 1: CTAs drift out of lockstep, so a peer's
//    tile is only sometimes still resident when a CTA needs it (η = 0.5
//    calibrated against the paper's T4 plateau, documented in DESIGN.md);
//  * the L2 capacity: when a wave's drift-window footprint exceeds it,
//    sharing degrades proportionally;
//  * a swizzle viability limit: the baseline's schedule degrades to
//    row-major once the grid row exceeds `swizzle_max_grid_x`, modeling the
//    cuBLAS 10.1 L2-blocking failure the paper observes at W = 12032.
#pragma once

#include <cstdint>
#include <limits>

namespace tc::model {

enum class LaunchOrder { kRowMajor, kSwizzled };

struct L2ReuseInput {
  int bm = 256, bn = 256, bk = 32;
  std::uint64_t grid_x = 1;  // CTAs along n
  std::uint64_t grid_y = 1;  // CTAs along m
  int wave_ctas = 36;        // CTAs resident device-wide
  LaunchOrder order = LaunchOrder::kSwizzled;
  int swizzle_max_grid_x = std::numeric_limits<int>::max();
  double sharing_efficiency = 0.5;
  /// How many k-iterations of wave footprint must coexist in L2 for peers
  /// to share (CTA drift window).
  double drift_window_iters = 2.0;
  std::uint64_t l2_capacity = 4ull << 20;
};

struct L2Reuse {
  double wave_rows = 1.0;  // distinct C-block rows touched by the wave
  double wave_cols = 1.0;  // distinct C-block columns
  double effective_sharing = 0.0;
  double dram_bytes_per_wave_iter = 0.0;   // A+B bytes from DRAM per k-slab
  double total_bytes_per_wave_iter = 0.0;  // all A+B LDG bytes per k-slab
  /// Fraction of tile-load sectors served from L2 (input for TimedSm's
  /// forced_l2_hit_rate).
  double ldg_l2_hit_rate = 0.0;
};

[[nodiscard]] L2Reuse l2_reuse(const L2ReuseInput& in);

/// DRAM efficiency as a function of the row stride between consecutively
/// fetched tile lines (GDDR6 loses row-buffer locality when k grows large).
/// 1.0 up to 16 KiB, then a gentle linear droop, floored at 0.80.
[[nodiscard]] double dram_row_efficiency(double row_stride_bytes);

}  // namespace tc::model
