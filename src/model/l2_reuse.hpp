// Inter-CTA L2 reuse model.
//
// A single simulated SM cannot observe the L2 hits produced by *other* SMs
// fetching the same A-row / B-column tiles. This model computes, for one
// wave of concurrently resident CTAs, how much of the per-iteration tile
// traffic must come from DRAM versus L2, given:
//
//  * the CTA launch order: row-major (naive) or swizzled (an L2-friendly
//    rectangular patch — the paper's future-work item, implemented here);
//  * a sharing efficiency η < 1: CTAs drift out of lockstep, so a peer's
//    tile is only sometimes still resident when a CTA needs it (η = 0.5
//    calibrated against the paper's T4 plateau, documented in DESIGN.md);
//  * the L2 capacity: when a wave's drift-window footprint exceeds it,
//    sharing degrades proportionally;
//  * a swizzle viability limit: the baseline's schedule degrades to
//    row-major once the grid row exceeds `swizzle_max_grid_x`, modeling the
//    cuBLAS 10.1 L2-blocking failure the paper observes at W = 12032.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/cta_order.hpp"

namespace tc::model {

/// Launch orders are shared with the simulator's CTA dispatch
/// (sim/cta_order.hpp) so the model and TimedDevice always agree on what an
/// order means.
using LaunchOrder = sim::LaunchOrder;

struct L2ReuseInput {
  int bm = 256, bn = 256, bk = 32;
  std::uint64_t grid_x = 1;  // CTAs along n
  std::uint64_t grid_y = 1;  // CTAs along m
  int wave_ctas = 36;        // CTAs resident device-wide
  LaunchOrder order = LaunchOrder::kSwizzled;
  int swizzle_max_grid_x = std::numeric_limits<int>::max();
  /// Panel width for LaunchOrder::kSupertile; ignored by other orders.
  int supertile_width = 8;
  /// Main-loop iterations (ceil(k / bk)) — the stack-distance sampler needs
  /// the k extent to decide whether cross-wave reuse can survive a full
  /// k-sweep of intervening traffic.
  double k_iters = 8.0;
  /// Resident C epilogue working set charged against the drift-window
  /// footprint. 0 in steady state: accumulators live in registers and the
  /// epilogue stores are write-combined straight to DRAM, never re-read, so
  /// they occupy no L2 tile capacity during the main loop.
  double c_tile_bytes = 0.0;
  double sharing_efficiency = 0.5;
  /// How many k-iterations of wave footprint must coexist in L2 for peers
  /// to share (CTA drift window).
  double drift_window_iters = 2.0;
  std::uint64_t l2_capacity = 4ull << 20;
};

struct L2Reuse {
  double wave_rows = 1.0;  // distinct C-block rows touched by the wave
  double wave_cols = 1.0;  // distinct C-block columns
  double effective_sharing = 0.0;
  double dram_bytes_per_wave_iter = 0.0;   // A+B bytes from DRAM per k-slab
  double total_bytes_per_wave_iter = 0.0;  // all A+B LDG bytes per k-slab
  /// Fraction of tile-load sectors served from L2 (input for TimedSm's
  /// forced_l2_hit_rate).
  double ldg_l2_hit_rate = 0.0;
};

/// Closed-form reuse estimate from the wave's patch geometry (rows x cols of
/// distinct C blocks). Fallback and cross-check for the trace-derived
/// sampler; the only path for LaunchOrder::kSwizzled, whose patch shape is
/// an analytic assumption rather than a concrete dispatch order.
[[nodiscard]] L2Reuse l2_reuse(const L2ReuseInput& in);

/// Preferred entry point: the stack-distance sampler (model/stack_distance.*)
/// for concrete launch orders, the closed form above for kSwizzled.
[[nodiscard]] L2Reuse l2_reuse_predict(const L2ReuseInput& in);

/// DRAM efficiency as a function of the row stride between consecutively
/// fetched tile lines (GDDR6 loses row-buffer locality when k grows large).
/// 1.0 up to 16 KiB, then a gentle linear droop, floored at 0.80.
[[nodiscard]] double dram_row_efficiency(double row_stride_bytes);

}  // namespace tc::model
