#include "model/blocking.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tc::model {

std::string BlockConfig::to_string() const {
  return "(" + std::to_string(bm) + "x" + std::to_string(bn) + "x" + std::to_string(bk) +
         ")/(" + std::to_string(wm) + "x" + std::to_string(wn) + "x" + std::to_string(wk) + ")";
}

double hmma_cycles(const BlockConfig& b, const CpiSet& cpi) {
  const double flops = 2.0 * b.bm * b.bn * b.bk;
  return flops / (2.0 * 16 * 8 * 8 * 4) * cpi.hmma;
}

double ldg_sts_cycles(const BlockConfig& b, const CpiSet& cpi) {
  const double bytes = static_cast<double>(b.bm + b.bn) * b.bk * 2.0;
  return bytes / (32.0 * 16.0) * (cpi.ldg128 + cpi.sts128);
}

double lds_cycles(const BlockConfig& b, const CpiSet& cpi) {
  const double warp_tiles = static_cast<double>(b.bm) * b.bn / (static_cast<double>(b.wm) * b.wn);
  const double fragments_per_step = static_cast<double>(b.wm) / 8.0 + static_cast<double>(b.wn) / 8.0;
  const double k_steps = static_cast<double>(b.bk) / b.wk;
  return warp_tiles * fragments_per_step * k_steps * cpi.lds32;
}

double memio_cycles(const BlockConfig& b, const CpiSet& cpi) {
  return ldg_sts_cycles(b, cpi) + lds_cycles(b, cpi);
}

bool tensor_bound(const BlockConfig& b, const CpiSet& cpi) {
  return hmma_cycles(b, cpi) >= memio_cycles(b, cpi);
}

int min_hmma_between_sts128(const CpiSet& cpi) {
  TC_CHECK(cpi.hmma > 0.0, "HMMA CPI must be positive");
  return static_cast<int>(std::ceil(4.0 * cpi.sts128 / cpi.hmma));
}

double sts_exposed_cycles(const BlockConfig& b, const CpiSet& cpi, int sts_interleave) {
  TC_CHECK(sts_interleave >= 1, "sts_interleave must be >= 1");
  const int needed = min_hmma_between_sts128(cpi);
  if (sts_interleave >= needed) return 0.0;
  const double sts = static_cast<double>(b.bm + b.bn) * b.bk * 2.0 / (32.0 * 16.0) * cpi.sts128;
  return sts * (1.0 - static_cast<double>(sts_interleave) / needed);
}

std::vector<TableVIRow> table_vi(const CpiSet& cpi) {
  const std::vector<BlockConfig> configs = {
      {128, 128, 32, 64, 64, 8},  {128, 128, 32, 128, 64, 8},
      {256, 128, 32, 64, 64, 8},  {256, 128, 32, 128, 64, 8},
      {256, 256, 32, 64, 64, 8},  {256, 256, 32, 128, 64, 8},
  };
  std::vector<TableVIRow> rows;
  rows.reserve(configs.size());
  for (const auto& c : configs) {
    rows.push_back({c, hmma_cycles(c, cpi), memio_cycles(c, cpi)});
  }
  return rows;
}

}  // namespace tc::model
