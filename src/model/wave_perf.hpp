// Wave composition: full-device kernel time from single-SM steady state.
//
// A full HGEMM at W = 16384 is ~10^10 warp instructions — far beyond
// cycle simulation. But every CTA executes the same schedule, so the device
// time decomposes as
//
//   launch + ceil(grid / wave) * (overhead + iters * cycles_per_iter)
//
// where cycles_per_iter and overhead are *measured* on the cycle simulator
// for one SM's resident CTA set under its fair bandwidth share. The
// composition's arithmetic invariants (wave quantization, k-linearity,
// launch-overhead behaviour) are covered by tests/test_model.cpp.
#pragma once

#include <cstdint>

#include "common/matrix.hpp"
#include "device/spec.hpp"

namespace tc::model {

/// Steady-state measurement of one SM's resident CTA set.
struct SteadyState {
  double cycles_per_iter = 0.0;  // per bk-slab main-loop iteration
  double overhead_cycles = 0.0;  // prologue + epilogue of the resident set
};

struct WaveInput {
  device::DeviceSpec spec;
  GemmShape shape;
  int bm = 256, bn = 256, bk = 32;
  int ctas_per_sm = 1;
  SteadyState steady;
  double launch_overhead_us = 3.0;
};

struct WaveResult {
  std::uint64_t grid_x = 0;
  std::uint64_t grid_y = 0;
  double waves = 0.0;
  double kernel_cycles = 0.0;
  double seconds = 0.0;
  double tflops = 0.0;
};

[[nodiscard]] WaveResult compose(const WaveInput& in);

}  // namespace tc::model
