#include "model/l2_reuse.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tc::model {

L2Reuse l2_reuse(const L2ReuseInput& in) {
  TC_CHECK(in.wave_ctas > 0 && in.grid_x > 0 && in.grid_y > 0, "bad reuse input");
  const double total_ctas = static_cast<double>(in.grid_x) * static_cast<double>(in.grid_y);
  const double wave = std::min(static_cast<double>(in.wave_ctas), total_ctas);

  const bool swizzle_intended = in.order == LaunchOrder::kSwizzled;
  const bool swizzle_ok =
      swizzle_intended && in.grid_x <= static_cast<std::uint64_t>(in.swizzle_max_grid_x);

  // Wave patch geometry: how many distinct C-block rows and columns the
  // resident wave spans under each launch order.
  double rows = 1.0;
  double cols = 1.0;
  switch (in.order) {
    case LaunchOrder::kSwizzled:
    case LaunchOrder::kHilbert:
      if (swizzle_ok || in.order == LaunchOrder::kHilbert) {
        // Rectangular patch minimizing rows*bm + cols*bn subject to
        // rows*cols=W — the swizzle's analytic assumption, and a good
        // closed-form stand-in for the Hilbert walk's near-square patches.
        rows = std::sqrt(wave * in.bn / in.bm);
        rows = std::clamp(rows, 1.0, static_cast<double>(in.grid_y));
        cols = std::min(std::ceil(wave / rows), static_cast<double>(in.grid_x));
        rows = std::min(std::ceil(wave / cols), static_cast<double>(in.grid_y));
      } else {
        cols = std::min(wave, static_cast<double>(in.grid_x));
        rows = std::ceil(wave / static_cast<double>(in.grid_x));
      }
      break;
    case LaunchOrder::kSupertile:
      // The wave walks a width-S column panel top to bottom. The panel width
      // is a property of the order, not the wave: a partial wave narrower
      // than its panel still spans min(S, grid_x) columns in this model,
      // which is where the sharers clamp below becomes load-bearing.
      cols = std::min(static_cast<double>(in.supertile_width),
                      static_cast<double>(in.grid_x));
      rows = std::min(std::ceil(wave / cols), static_cast<double>(in.grid_y));
      break;
    case LaunchOrder::kRowMajor:
    case LaunchOrder::kSerpentine:
      cols = std::min(wave, static_cast<double>(in.grid_x));
      rows = std::ceil(wave / static_cast<double>(in.grid_x));
      break;
  }

  // Drift-window footprint check: sharing degrades when the tiles a wave
  // needs simultaneously do not fit in L2. The C epilogue working set
  // (c_tile_bytes, 0 in steady state) competes for the same capacity; the
  // footprint > 0 guard keeps a drift_window_iters = 0 && c_tile_bytes = 0
  // input well-defined (no footprint means nothing to thrash, eta intact).
  const double footprint =
      (rows * in.bm + cols * in.bn) * in.bk * 2.0 * in.drift_window_iters + in.c_tile_bytes;
  double eta = in.sharing_efficiency;
  if (footprint > static_cast<double>(in.l2_capacity) && footprint > 0.0) {
    eta *= static_cast<double>(in.l2_capacity) / footprint;
  }
  if (swizzle_intended && !swizzle_ok) {
    // A *failed* swizzle is worse than plain row-major: the schedule's CTA
    // rasterization is scattered, so concurrent CTAs rarely want the same
    // tile at the same time. This models the cuBLAS 10.1 cliff at W=12032.
    eta *= 0.3;
  }

  // Per k-slab: each distinct row's A tile is loaded once from DRAM and
  // re-loaded by (sharers-1) peers, of which a fraction eta hit L2.
  // Sharers are clamped to >= 1: a wave narrower than its patch (supertile
  // S > wave on ragged waves) would otherwise make (sharers-1)*(1-eta)
  // negative and predict fewer DRAM slabs than the compulsory minimum,
  // inflating the hit rate.
  const double a_sharers = std::max(1.0, wave / rows);
  const double b_sharers = std::max(1.0, wave / cols);
  const double a_dram_slabs = rows * (1.0 + (a_sharers - 1.0) * (1.0 - eta));
  const double b_dram_slabs = cols * (1.0 + (b_sharers - 1.0) * (1.0 - eta));

  L2Reuse out;
  out.wave_rows = rows;
  out.wave_cols = cols;
  out.effective_sharing = eta;
  out.total_bytes_per_wave_iter = wave * (in.bm + in.bn) * in.bk * 2.0;
  out.dram_bytes_per_wave_iter =
      std::min((a_dram_slabs * in.bm + b_dram_slabs * in.bn) * in.bk * 2.0,
               out.total_bytes_per_wave_iter);
  out.ldg_l2_hit_rate = 1.0 - out.dram_bytes_per_wave_iter / out.total_bytes_per_wave_iter;
  return out;
}

double dram_row_efficiency(double row_stride_bytes) {
  constexpr double kFullLocality = 16.0 * 1024;
  constexpr double kDroopPer16K = 0.15;
  if (row_stride_bytes <= kFullLocality) return 1.0;
  const double droop = kDroopPer16K * (row_stride_bytes - kFullLocality) / kFullLocality;
  return std::max(0.80, 1.0 - droop);
}

}  // namespace tc::model
