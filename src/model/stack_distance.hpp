// Reuse-distance L2 model: a byte-weighted LRU stack-distance sampler over a
// CTA-tile access trace.
//
// Where the closed-form l2_reuse() guesses a wave's patch geometry and
// applies a calibrated sharing efficiency, this sampler *derives* the L2 hit
// rate from first principles: replay the slab accesses a launch order
// actually produces (wave by wave, iteration by iteration, matching the
// TimedDevice's lockstep dispatch) against an LRU stack the size of L2, and
// count how many bytes return within capacity.
//
// The stack is the classic bucketed marker-list structure: one std::list in
// recency order plus one marker iterator per distance threshold. Each marker
// stays pinned at its byte depth, advancing O(1) amortized per access, so a
// trace of N accesses against B buckets costs O(N*B) instead of the naive
// O(N^2) stack walk. The set-associativity of the real L2 (16-way) is
// approximated as full-capacity LRU — standard for reuse-distance models and
// validated against the emergent SectorCache behaviour by the l2_xval suite.
//
// Trace generators here are deliberately *independent* implementations of
// the launch orders in sim/cta_order.*: plain nested loops (and the inverse
// Hilbert map xy2d vs. the simulator's d2xy). A property test pins both
// sides to the identical permutation so the model can never drift from what
// the device actually dispatches.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/l2_reuse.hpp"

namespace tc::model {

/// Byte-weighted LRU stack with bucketed marker-list distance queries.
class StackDistance {
 public:
  /// Distance class for a first-touch (compulsory miss).
  static constexpr int kCold = -1;

  /// `bucket_bytes` are ascending byte-distance thresholds t_0 < ... <
  /// t_{B-1}. access() classifies each reuse into the number of thresholds
  /// <= its distance: 0 means distance < t_0, B means distance >= t_{B-1}.
  explicit StackDistance(std::vector<double> bucket_bytes);

  /// Records an access to `block_id` occupying `bytes` bytes. Returns the
  /// distance class of this access (kCold on first touch) and moves the
  /// block to the top of the stack.
  int access(std::uint64_t block_id, double bytes);

  /// Counts per distance class 0..B; histogram()[B+1] counts cold misses.
  [[nodiscard]] const std::vector<std::uint64_t>& histogram() const { return histogram_; }

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }

 private:
  struct Block {
    std::uint64_t id;
    double bytes;
    int region;  // number of markers at-or-before this block
  };
  using Iter = std::list<Block>::iterator;
  struct Marker {
    Iter pos;                 // first block at byte depth >= threshold
    double bytes_above = 0;   // exact bytes strictly before pos
  };

  std::vector<double> thresholds_;
  std::list<Block> stack_;
  std::unordered_map<std::uint64_t, Iter> index_;
  std::vector<Marker> markers_;
  std::vector<std::uint64_t> histogram_;
  std::uint64_t accesses_ = 0;
};

/// The full dispatch sequence of `order` over a grid_x x grid_y grid —
/// the model-side twin of sim::CtaOrderMap, implemented independently.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>> launch_trace(
    LaunchOrder order, std::uint32_t grid_x, std::uint32_t grid_y, int supertile_width);

/// Per-array result of replaying a sampled CTA-tile trace through the stack.
struct SampledL2 {
  double ldg_l2_hit_rate = 0.0;  // byte-weighted, A and B loads combined
  double a_hit_rate = 0.0;       // A-slab bytes served from L2
  double b_hit_rate = 0.0;       // B-slab bytes served from L2
  int wave_rows = 0;             // distinct C-block rows in the first wave
  int wave_cols = 0;             // distinct C-block columns in the first wave
  std::uint64_t accesses = 0;
  std::uint64_t cold_misses = 0;
  std::vector<std::uint64_t> histogram;
};

/// Replays the A/B slab loads of `in.order` (wave by wave, iteration by
/// iteration) through a StackDistance the size of L2 and returns the
/// byte-weighted hit rates. kSwizzled is traced as its row-major dispatch
/// realization.
[[nodiscard]] SampledL2 sample_l2_reuse(const L2ReuseInput& in);

}  // namespace tc::model
