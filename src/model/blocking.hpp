// Blocking-size analysis (paper Section VI-A, Eqs. (3)-(5), Table VI) and
// the instruction-interleaving rule (Section VI-C, Eq. (6)).
//
// The analysis compares, per main-loop iteration of the blocked HGEMM
// (Algorithm 1), the cycles the Tensor Core pipe needs against the cycles
// the (shared) memory-IO pipe needs. A configuration is usable only when the
// HMMA cycles dominate — otherwise the MIO pipe throttles the Tensor Cores.
#pragma once

#include <string>
#include <vector>

namespace tc::model {

/// Measured CPI inputs of the analysis. Defaults are the paper's values
/// (Tables I, III, IV); benches refill them from this repo's own simulator
/// measurements to check consistency.
struct CpiSet {
  double hmma = 8.06;     // HMMA.1688.F16
  double ldg128 = 15.95;  // LDG.128 served from L2
  double sts128 = 10.00;
  double lds32 = 2.11;
};

/// Two-level blocking configuration (thread block and warp tiles).
struct BlockConfig {
  int bm = 256, bn = 256, bk = 32;
  int wm = 128, wn = 64, wk = 8;

  [[nodiscard]] std::string to_string() const;
};

/// Eq. (3): Tensor-Core cycles per thread-block iteration.
/// 2*bm*bn*bk FLOP / (2*16*8*8 per HMMA * 4 partitions) * CPI.
[[nodiscard]] double hmma_cycles(const BlockConfig& b, const CpiSet& cpi);

/// Eq. (4): cycles to move the (bm+bn)*bk tile global->shared with 128-bit
/// instructions through the MIO pipe.
[[nodiscard]] double ldg_sts_cycles(const BlockConfig& b, const CpiSet& cpi);

/// Eq. (5): cycles to read fragments from shared memory with LDS.32.
[[nodiscard]] double lds_cycles(const BlockConfig& b, const CpiSet& cpi);

/// Eq. (4) + Eq. (5).
[[nodiscard]] double memio_cycles(const BlockConfig& b, const CpiSet& cpi);

/// True when the config keeps the Tensor Cores (not the MIO pipe) busy.
[[nodiscard]] bool tensor_bound(const BlockConfig& b, const CpiSet& cpi);

/// Eq. (6): minimum number of HMMAs to interleave between consecutive
/// STS.128 so the 4 partitions' compute covers the store's MIO occupancy.
[[nodiscard]] int min_hmma_between_sts128(const CpiSet& cpi);

/// Per-iteration STS.128 MIO cycles left uncovered by compute when the
/// interleave spacing falls short of Eq. (6)'s minimum: with i HMMAs between
/// consecutive stores the Tensor pipe covers i/min of each store's MIO
/// occupancy and the remainder stalls issue (the Fig. 4 effect). Zero when
/// sts_interleave >= min_hmma_between_sts128.
[[nodiscard]] double sts_exposed_cycles(const BlockConfig& b, const CpiSet& cpi,
                                        int sts_interleave);

/// The rows of Table VI.
struct TableVIRow {
  BlockConfig config;
  double hmma = 0.0;
  double memio = 0.0;
};
[[nodiscard]] std::vector<TableVIRow> table_vi(const CpiSet& cpi);

}  // namespace tc::model
