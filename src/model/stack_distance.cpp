#include "model/stack_distance.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tc::model {

StackDistance::StackDistance(std::vector<double> bucket_bytes)
    : thresholds_(std::move(bucket_bytes)),
      markers_(thresholds_.size()),
      histogram_(thresholds_.size() + 2, 0) {
  TC_CHECK(!thresholds_.empty(), "StackDistance needs at least one threshold");
  for (std::size_t b = 0; b < thresholds_.size(); ++b) {
    TC_CHECK(thresholds_[b] > 0.0, "StackDistance thresholds must be positive");
    TC_CHECK(b == 0 || thresholds_[b] > thresholds_[b - 1],
             "StackDistance thresholds must be ascending");
    markers_[b].pos = stack_.end();
  }
}

int StackDistance::access(std::uint64_t block_id, double bytes) {
  const int num_markers = static_cast<int>(markers_.size());
  ++accesses_;
  int region = kCold;
  const auto idx = index_.find(block_id);
  if (idx == index_.end()) {
    ++histogram_.back();
    stack_.push_front(Block{block_id, bytes, 0});
    index_.emplace(block_id, stack_.begin());
    // The new front block sits strictly above every marker.
    for (auto& m : markers_) m.bytes_above += bytes;
  } else {
    const Iter it = idx->second;
    region = it->region;
    ++histogram_[static_cast<std::size_t>(region)];
    // Detach: markers strictly below the block lose its bytes from their
    // prefix; markers pointing *at* it step down one so their depth (bytes
    // strictly above) is unchanged.
    for (int b = 0; b < num_markers; ++b) {
      if (markers_[static_cast<std::size_t>(b)].pos == it) {
        markers_[static_cast<std::size_t>(b)].pos = std::next(it);
      } else if (b >= region) {
        markers_[static_cast<std::size_t>(b)].bytes_above -= it->bytes;
      }
    }
    stack_.splice(stack_.begin(), stack_, it);
    it->region = 0;
    it->bytes = bytes;
    for (auto& m : markers_) m.bytes_above += bytes;
  }
  // Re-pin each marker at its byte depth: step toward the front while the
  // block just above it still leaves >= threshold bytes in the prefix. A
  // block the marker steps over is now at-or-below that marker, so its
  // region grows to include it.
  for (int b = 0; b < num_markers; ++b) {
    auto& m = markers_[static_cast<std::size_t>(b)];
    while (m.pos != stack_.begin()) {
      const Iter prev = std::prev(m.pos);
      if (m.bytes_above - prev->bytes < thresholds_[static_cast<std::size_t>(b)]) break;
      m.pos = prev;
      m.bytes_above -= prev->bytes;
      prev->region = std::max(prev->region, b + 1);
    }
  }
  return region;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> launch_trace(LaunchOrder order,
                                                                  std::uint32_t grid_x,
                                                                  std::uint32_t grid_y,
                                                                  int supertile_width) {
  TC_CHECK(grid_x >= 1 && grid_y >= 1, "launch_trace: empty grid");
  TC_CHECK(supertile_width >= 1, "launch_trace: supertile width must be >= 1");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> seq;
  seq.reserve(static_cast<std::size_t>(grid_x) * grid_y);
  switch (order) {
    case LaunchOrder::kRowMajor:
    case LaunchOrder::kSwizzled:
      // kSwizzled is dispatched row-major by the simulator; trace likewise.
      for (std::uint32_t y = 0; y < grid_y; ++y) {
        for (std::uint32_t x = 0; x < grid_x; ++x) seq.emplace_back(x, y);
      }
      break;
    case LaunchOrder::kSerpentine:
      for (std::uint32_t y = 0; y < grid_y; ++y) {
        if (y % 2 == 0) {
          for (std::uint32_t x = 0; x < grid_x; ++x) seq.emplace_back(x, y);
        } else {
          for (std::uint32_t x = grid_x; x-- > 0;) seq.emplace_back(x, y);
        }
      }
      break;
    case LaunchOrder::kSupertile: {
      const std::uint32_t w = std::min<std::uint32_t>(
          static_cast<std::uint32_t>(supertile_width), grid_x);
      for (std::uint32_t x0 = 0; x0 < grid_x; x0 += w) {
        const std::uint32_t x1 = std::min(x0 + w, grid_x);
        for (std::uint32_t y = 0; y < grid_y; ++y) {
          for (std::uint32_t x = x0; x < x1; ++x) seq.emplace_back(x, y);
        }
      }
      break;
    }
    case LaunchOrder::kHilbert: {
      // Inverse Hilbert map (xy2d) over the bounding 2^k square — the
      // simulator walks the forward map (d2xy); sorting every in-grid cell
      // by its curve index must reproduce the same sequence, which the
      // property suite asserts.
      std::uint64_t side = 1;
      while (side < grid_x || side < grid_y) side <<= 1;
      const auto xy2d = [side](std::uint64_t x, std::uint64_t y) {
        std::uint64_t d = 0;
        for (std::uint64_t s = side / 2; s > 0; s /= 2) {
          const std::uint64_t rx = (x & s) != 0 ? 1 : 0;
          const std::uint64_t ry = (y & s) != 0 ? 1 : 0;
          d += s * s * ((3 * rx) ^ ry);
          if (ry == 0) {
            if (rx == 1) {
              x = s - 1 - x;
              y = s - 1 - y;
            }
            std::swap(x, y);
          }
        }
        return d;
      };
      std::vector<std::pair<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>> keyed;
      keyed.reserve(static_cast<std::size_t>(grid_x) * grid_y);
      for (std::uint32_t y = 0; y < grid_y; ++y) {
        for (std::uint32_t x = 0; x < grid_x; ++x) keyed.push_back({xy2d(x, y), {x, y}});
      }
      std::sort(keyed.begin(), keyed.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [d, xy] : keyed) seq.push_back(xy);
      break;
    }
  }
  return seq;
}

SampledL2 sample_l2_reuse(const L2ReuseInput& in) {
  TC_CHECK(in.wave_ctas > 0 && in.grid_x > 0 && in.grid_y > 0, "bad reuse input");
  const std::uint64_t total = in.grid_x * in.grid_y;
  const std::uint64_t wave = std::min<std::uint64_t>(static_cast<std::uint64_t>(in.wave_ctas),
                                                     total);

  const auto seq = launch_trace(in.order, static_cast<std::uint32_t>(in.grid_x),
                                static_cast<std::uint32_t>(in.grid_y), in.supertile_width);

  // Sample a prefix of whole waves: the dispatch pattern is periodic, so a
  // handful of waves reaches steady state without replaying huge grids.
  const std::uint64_t cap_ctas = std::max<std::uint64_t>(16 * wave, 2048);
  std::uint64_t sampled = std::min(total, cap_ctas);
  sampled = std::max<std::uint64_t>(wave, sampled - sampled % wave);
  sampled = std::min(sampled, total);

  // One LRU stack the size of L2. Sub-capacity thresholds resolve the
  // histogram for diagnostics; the capacity threshold is the hit boundary.
  const double cap = static_cast<double>(in.l2_capacity);
  StackDistance stack({cap / 8, cap / 4, cap / 2, cap, 2 * cap});
  const int cap_class = 4;  // distance classes 0..3 are < cap, i.e. hits

  // Iterations to replay per wave. Wave k-sweeps run to completion before
  // the next wave launches (lockstep dispatch), so when the replay truncates
  // a longer k extent, blocks are tagged per wave: the truncated-away
  // iterations would have pushed any cross-wave reuse past capacity.
  const std::uint64_t k_iters =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(in.k_iters)));
  const std::uint64_t iters_sim = std::min<std::uint64_t>(k_iters, 12);
  const bool tag_waves = k_iters > iters_sim;

  const double a_bytes = static_cast<double>(in.bm) * in.bk * 2.0;
  const double b_bytes = static_cast<double>(in.bn) * in.bk * 2.0;

  // Block ids: [wave tag | iter | array bit | row-or-column index].
  const auto a_id = [&](std::uint64_t w, std::uint64_t iter, std::uint64_t y) {
    return (tag_waves ? w : 0) << 48 | iter << 34 | std::uint64_t{1} << 33 | y;
  };
  const auto b_id = [&](std::uint64_t w, std::uint64_t iter, std::uint64_t x) {
    return (tag_waves ? w : 0) << 48 | iter << 34 | x;
  };

  SampledL2 out;
  double a_hit = 0, a_total = 0, b_hit = 0, b_total = 0;
  for (std::uint64_t w0 = 0; w0 < sampled; w0 += wave) {
    const std::uint64_t w1 = std::min(w0 + wave, sampled);
    const std::uint64_t wave_idx = w0 / wave;
    for (std::uint64_t iter = 0; iter < iters_sim; ++iter) {
      for (std::uint64_t i = w0; i < w1; ++i) {
        const auto [x, y] = seq[static_cast<std::size_t>(i)];
        const int ra = stack.access(a_id(wave_idx, iter, y), a_bytes);
        a_total += a_bytes;
        if (ra != StackDistance::kCold && ra < cap_class) a_hit += a_bytes;
        const int rb = stack.access(b_id(wave_idx, iter, x), b_bytes);
        b_total += b_bytes;
        if (rb != StackDistance::kCold && rb < cap_class) b_hit += b_bytes;
      }
    }
  }

  out.a_hit_rate = a_total > 0 ? a_hit / a_total : 0.0;
  out.b_hit_rate = b_total > 0 ? b_hit / b_total : 0.0;
  const double tot = a_total + b_total;
  out.ldg_l2_hit_rate = tot > 0 ? (a_hit + b_hit) / tot : 0.0;
  out.accesses = stack.accesses();
  out.cold_misses = stack.histogram().back();
  out.histogram = stack.histogram();

  // First-wave patch geometry, for diagnostics and report lines.
  std::vector<bool> row_seen(in.grid_y, false), col_seen(in.grid_x, false);
  for (std::uint64_t i = 0; i < wave; ++i) {
    const auto [x, y] = seq[static_cast<std::size_t>(i)];
    if (!row_seen[y]) {
      row_seen[y] = true;
      ++out.wave_rows;
    }
    if (!col_seen[x]) {
      col_seen[x] = true;
      ++out.wave_cols;
    }
  }
  return out;
}

L2Reuse l2_reuse_predict(const L2ReuseInput& in) {
  if (in.order == LaunchOrder::kSwizzled) return l2_reuse(in);
  const SampledL2 s = sample_l2_reuse(in);
  const double total_ctas = static_cast<double>(in.grid_x) * static_cast<double>(in.grid_y);
  const double wave = std::min(static_cast<double>(in.wave_ctas), total_ctas);
  L2Reuse out;
  out.wave_rows = s.wave_rows;
  out.wave_cols = s.wave_cols;
  // Fraction of *re*-accessed bytes that hit — the trace-derived analogue of
  // the closed form's calibrated sharing efficiency.
  const double reaccess =
      1.0 - static_cast<double>(s.cold_misses) / static_cast<double>(std::max<std::uint64_t>(
                                                     1, s.accesses));
  out.effective_sharing = reaccess > 0 ? std::min(1.0, s.ldg_l2_hit_rate / reaccess) : 0.0;
  out.total_bytes_per_wave_iter = wave * (in.bm + in.bn) * in.bk * 2.0;
  out.ldg_l2_hit_rate = s.ldg_l2_hit_rate;
  out.dram_bytes_per_wave_iter = (1.0 - s.ldg_l2_hit_rate) * out.total_bytes_per_wave_iter;
  return out;
}

}  // namespace tc::model
