// Transformer attention projections (the BERT workload of the paper's
// introduction): Q/K/V projections and attention scores are rectangular
// HGEMMs. This example runs a single-head scaled dot-product attention
// block functionally on the simulator and sweeps sequence lengths through
// the performance estimator — the [W x W x kW] shapes of Figs. 8/9.
#include <cmath>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/hgemm.hpp"
#include "core/reference.hpp"
#include "driver/device.hpp"

using namespace tc;

namespace {

/// B^T view of a row-major matrix (the kernels take B transposed).
HalfMatrix transpose(const HalfMatrix& m) {
  HalfMatrix t(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) t.at(j, i) = m.at(i, j);
  }
  return t;
}

/// Row-wise softmax in float, rounded back to half.
void softmax_rows(HalfMatrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float mx = -1e30f;
    for (std::size_t j = 0; j < m.cols(); ++j) mx = std::max(mx, m.at(i, j).to_float());
    float sum = 0.0f;
    std::vector<float> e(m.cols());
    for (std::size_t j = 0; j < m.cols(); ++j) {
      e[j] = std::exp(m.at(i, j).to_float() - mx);
      sum += e[j];
    }
    for (std::size_t j = 0; j < m.cols(); ++j) m.at(i, j) = half(e[j] / sum);
  }
}

}  // namespace

int main() {
  Rng rng(42);
  const std::size_t seq = 128;   // sequence length
  const std::size_t dmodel = 256;
  const std::size_t dhead = 64;

  HalfMatrix x(seq, dmodel);
  x.randomize(rng, -0.5f, 0.5f);
  HalfMatrix wq_t(dhead, dmodel), wk_t(dhead, dmodel), wv_t(dhead, dmodel);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dmodel));
  wq_t.randomize(rng, -scale, scale);
  wk_t.randomize(rng, -scale, scale);
  wv_t.randomize(rng, -scale, scale);

  driver::Device dev(device::rtx2070());

  // Projections: Q = X Wq^T etc. — [seq x dmodel] x [dmodel x dhead].
  const HalfMatrix q = core::run_hgemm(dev, x, wq_t);
  const HalfMatrix k = core::run_hgemm(dev, x, wk_t);
  const HalfMatrix v = core::run_hgemm(dev, x, wv_t);

  // Scores = softmax(Q K^T / sqrt(dhead)): K is already "n x k" for the
  // kernel's B^T convention, so Q K^T is a direct call.
  HalfMatrix scores = core::run_hgemm(dev, q, k);
  const float inv = 1.0f / std::sqrt(static_cast<float>(dhead));
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    for (std::size_t j = 0; j < scores.cols(); ++j) {
      scores.at(i, j) = half(scores.at(i, j).to_float() * inv);
    }
  }
  softmax_rows(scores);

  // Context = scores * V — V must be transposed for the B^T convention.
  const HalfMatrix context = core::run_hgemm(dev, scores, transpose(v));

  std::cout << "single-head attention on the simulated RTX 2070\n";
  std::cout << "seq " << seq << ", d_model " << dmodel << ", d_head " << dhead << "\n";
  float row_sum = 0.0f;
  for (std::size_t j = 0; j < scores.cols(); ++j) row_sum += scores.at(0, j).to_float();
  std::cout << "softmax row sum (should be ~1): " << row_sum << "\n";
  std::cout << "context[0][0..3] = " << context.at(0, 0) << " " << context.at(0, 1) << " "
            << context.at(0, 2) << " " << context.at(0, 3) << "\n\n";

  // Production-scale attention GEMMs: the rectangular sweep of Figs. 8/9.
  std::cout << "estimated throughput for large attention shapes (batch*heads folded in):\n";
  TablePrinter t({"GEMM", "shape (m x n x k)", "RTX2070 TFLOPS", "T4 TFLOPS"});
  core::PerfEstimator est2070(device::rtx2070(), core::HgemmConfig::optimized());
  core::PerfEstimator estT4(device::t4(), core::HgemmConfig::optimized());
  const struct {
    const char* name;
    GemmShape s;
  } rows[] = {
      {"QKV projection", {16384, 2304, 768}},
      {"scores QK^T", {8192, 8192, 512}},
      {"context AV", {8192, 512, 8192}},
      {"output proj", {16384, 768, 768}},
  };
  for (const auto& r : rows) {
    t.add_row({r.name,
               std::to_string(r.s.m) + " x " + std::to_string(r.s.n) + " x " +
                   std::to_string(r.s.k),
               fmt_fixed(est2070.estimate(r.s).tflops, 1),
               fmt_fixed(estT4.estimate(r.s).tflops, 1)});
  }
  t.print(std::cout);
  return 0;
}
