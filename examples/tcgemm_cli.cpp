// tcgemm_cli — command-line front end for the library.
//
//   tcgemm_cli run  --m 512 --n 512 --k 256 [--device rtx2070] [--check]
//   tcgemm_cli perf --m 8192 --n 8192 --k 8192 [--device t4] [--baseline]
//   tcgemm_cli disasm [--baseline]
//
// `run` executes the kernel functionally on the simulator (optionally
// validating against the bit-exact reference); `perf` prints the estimated
// full-device time/TFLOPS; `disasm` dumps the generated SASS.
#include <cstring>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "core/reference.hpp"
#include "driver/device.hpp"

using namespace tc;

namespace {

struct Args {
  std::string command;
  std::size_t m = 512, n = 512, k = 256;
  std::string device = "rtx2070";
  bool check = false;
  bool baseline = false;
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) return a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      TC_CHECK(i + 1 < argc, "flag " + flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--m") {
      a.m = std::stoul(value());
    } else if (flag == "--n") {
      a.n = std::stoul(value());
    } else if (flag == "--k") {
      a.k = std::stoul(value());
    } else if (flag == "--device") {
      a.device = value();
    } else if (flag == "--check") {
      a.check = true;
    } else if (flag == "--baseline") {
      a.baseline = true;
    } else {
      throw Error("unknown flag " + flag);
    }
  }
  return a;
}

int usage() {
  std::cout << "usage:\n"
               "  tcgemm_cli run    --m M --n N --k K [--device rtx2070|t4] [--check] [--baseline]\n"
               "  tcgemm_cli perf   --m M --n N --k K [--device rtx2070|t4] [--baseline]\n"
               "  tcgemm_cli disasm [--m M --n N --k K] [--baseline]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    const auto cfg =
        args.baseline ? core::HgemmConfig::cublas_like() : core::HgemmConfig::optimized();

    if (args.command == "run") {
      Rng rng(1);
      HalfMatrix a(args.m, args.k), bt(args.n, args.k);
      a.randomize(rng, -0.5f, 0.5f);
      bt.randomize(rng, -0.5f, 0.5f);
      driver::Device dev(device::spec_by_name(args.device));
      const HalfMatrix c = core::run_hgemm(dev, a, bt, cfg);
      std::cout << "ran " << cfg.name() << " on " << dev.spec().name << ": C is " << c.rows()
                << " x " << c.cols() << ", C[0][0] = " << c.at(0, 0) << "\n";
      if (args.check) {
        const auto mismatches = core::mismatch_count(c, core::gemm_ref_tc(a, bt));
        std::cout << "bit-exact mismatches vs reference: " << mismatches << "\n";
        return mismatches == 0 ? 0 : 1;
      }
      return 0;
    }

    if (args.command == "perf") {
      core::PerfEstimator est(device::spec_by_name(args.device), cfg);
      const auto p = est.estimate({args.m, args.n, args.k});
      std::cout << cfg.name() << " on " << est.spec().name << " for " << args.m << " x "
                << args.n << " x " << args.k << ":\n"
                << "  " << p.tflops << " TFLOPS, " << p.seconds * 1e3 << " ms, " << p.waves
                << " waves, L2 hit " << p.l2_hit_rate << ", " << p.cycles_per_iter
                << " cycles/iteration\n";
      return 0;
    }

    if (args.command == "disasm") {
      const GemmShape shape{
          (args.m + static_cast<std::size_t>(cfg.bm) - 1) / static_cast<std::size_t>(cfg.bm) *
              static_cast<std::size_t>(cfg.bm),
          (args.n + static_cast<std::size_t>(cfg.bn) - 1) / static_cast<std::size_t>(cfg.bn) *
              static_cast<std::size_t>(cfg.bn),
          std::max<std::size_t>((args.k + static_cast<std::size_t>(cfg.bk) - 1) /
                                    static_cast<std::size_t>(cfg.bk) *
                                    static_cast<std::size_t>(cfg.bk),
                                2 * static_cast<std::size_t>(cfg.bk))};
      std::cout << core::hgemm_kernel(cfg, shape).disassemble();
      return 0;
    }

    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
