// tcgemm_cli — command-line front end for the library.
//
//   tcgemm_cli run  --m 512 --n 512 --k 256 [--device rtx2070] [--check]
//                   [--engine interpret|jit]
//   tcgemm_cli perf --m 8192 --n 8192 --k 8192 [--device t4] [--baseline]
//                   [--profile] [--top N] [--trace-out trace.json]
//   tcgemm_cli lint [--m M --n N --k K] [--baseline]
//   tcgemm_cli schedule [--m M --n N --k K] [--baseline] [--wmma] [--device rtx2070]
//   tcgemm_cli disasm [--baseline]
//   tcgemm_cli check [--m M --n N --k K]
//   tcgemm_cli fuzz [--programs N] [--seed S] [--numerics idealized|bitaccurate]
//                   [--numeric-operands] [--engine timed|jit]
//   tcgemm_cli numerics [--m M --n N] [--k KMAX] [--seed S]
//   tcgemm_cli tune [--m M --n N --k K] [--device rtx2070|t4] [--budget N]
//                   [--explore N] [--seed S] [--threads N] [--engine device|model]
//                   [--cache winners.json]
//   tcgemm_cli serve [--requests N] [--tenants N] [--workers N] [--device rtx2070|t4]
//                    [--cache winners.json] [--seed S] [--budget N] [--threads N]
//   tcgemm_cli op    [--m M --n N --k K] [--batch B] [--split-k S] [--alpha A]
//                    [--beta B] [--bias] [--act none|relu|gelu] [--check]
//
// `run` executes the kernel functionally on the simulator (optionally
// validating against the bit-exact reference); `perf` prints the estimated
// full-device time/TFLOPS and, with --profile, hardware-style counters for
// the steady-state portion (pipe utilization, stall attribution, optional
// Chrome-trace timeline for chrome://tracing / Perfetto); `lint` runs the
// static schedule checks including the latency-table slack analysis;
// `schedule` compares the automatic scheduler's minimal (no-reorder) and
// full pipelines on the real kernel: pass statistics, single-CTA timed
// cycles for each mode, and the stall-slack lint of the shipped schedule;
// `disasm` dumps the generated SASS; `check` runs the scoreboard hazard
// detector (src/check) over every built-in kernel and fails on any error;
// `fuzz` differentially fuzzes the two executors (see docs/checking.md);
// `numerics` sweeps error-vs-k curves comparing idealized, bit-accurate
// FP16-accumulate and bit-accurate FP32-accumulate HMMA semantics against a
// double-precision oracle (see docs/numerics.md);
// `op` lowers a GemmOp (batched / split-K / fused-epilogue GEMM) to its
// kernel-launch plan, executes it on the simulator and optionally checks the
// output bitwise against the op-level host reference (see docs/ops.md);
// `tune` runs the model-guided autotuner over the legal config space and
// prints the ranked candidates (see docs/tuning.md); with --cache it answers
// from / appends to the persistent shape-bucketed tuning cache; `serve`
// replays seeded multi-tenant GEMM traffic through the serving layer
// (tc::serve) against the same cache (see docs/serving.md).
// All commands accept --json <path> for machine-readable output.
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "check/fuzz.hpp"
#include "check/hazard.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "core/profile.hpp"
#include "core/reference.hpp"
#include "driver/device.hpp"
#include "model/validate.hpp"
#include "numerics/curves.hpp"
#include "numerics/numerics.hpp"
#include "op/op.hpp"
#include "prof/trace.hpp"
#include "sass/validator.hpp"
#include "sched/schedule.hpp"
#include "serve/serve.hpp"
#include "serve/traffic.hpp"
#include "sim/engine.hpp"
#include "sim/pipes.hpp"
#include "tune/cache.hpp"
#include "tune/tune.hpp"

using namespace tc;

namespace {

struct Args {
  std::string command;
  std::size_t m = 512, n = 512, k = 256;
  std::string device = "rtx2070";
  bool check = false;
  bool baseline = false;
  bool wmma = false;
  bool profile = false;
  int top = 10;
  int programs = 200;
  std::uint64_t seed = 1;
  std::string trace_out;
  std::string json;
  /// Meaning is per command — perf/tune: "model" (WavePerf) or "device"
  /// (TimedDevice); run: "interpret" or "jit" (functional engine); fuzz:
  /// "timed" (functional-vs-timed) or "jit" (jit-vs-interpreter).
  std::string engine = "model";
  bool shape_set = false;        // any of --m/--n/--k given
  bool mn_set = false;           // --m or --n given explicitly
  bool k_set = false;            // --k given explicitly
  bool engine_set = false;
  int budget = 24;   // tune: timed evaluations
  int explore = -1;  // tune: seeded off-rank picks (-1 = budget/4)
  int threads = 1;   // tune: host evaluation threads
  std::string cache;  // tune/serve: persistent tuning-cache file
  int requests = 120; // serve: traffic size
  int tenants = 2;    // serve: traffic tenants
  int workers = 2;    // serve: simulated device workers
  /// HMMA semantics for run/fuzz (--numerics idealized|bitaccurate).
  numerics::NumericsMode numerics = numerics::NumericsMode::kIdealized;
  bool numeric_operands = false;  // fuzz: numerics operand class
  int batch = 1;        // op: strided-batch count
  int split_k = 1;      // op: split-K factor
  double alpha = 1.0;   // op: epilogue alpha
  double beta = 0.0;    // op: epilogue beta
  bool bias = false;    // op: per-column bias row
  std::string act = "none";  // op: activation (none|relu|gelu)
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) return a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      TC_CHECK(i + 1 < argc, "flag " + flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--m") {
      a.m = std::stoul(value());
      a.shape_set = true;
      a.mn_set = true;
    } else if (flag == "--n") {
      a.n = std::stoul(value());
      a.shape_set = true;
      a.mn_set = true;
    } else if (flag == "--k") {
      a.k = std::stoul(value());
      a.shape_set = true;
      a.k_set = true;
    } else if (flag == "--device") {
      a.device = value();
    } else if (flag == "--check") {
      a.check = true;
    } else if (flag == "--baseline") {
      a.baseline = true;
    } else if (flag == "--wmma") {
      a.wmma = true;
    } else if (flag == "--profile") {
      a.profile = true;
    } else if (flag == "--top") {
      a.top = std::stoi(value());
    } else if (flag == "--programs") {
      a.programs = std::stoi(value());
    } else if (flag == "--seed") {
      a.seed = std::stoull(value());
    } else if (flag == "--trace-out") {
      a.trace_out = value();
    } else if (flag == "--json") {
      a.json = value();
    } else if (flag == "--engine") {
      a.engine = value();
      a.engine_set = true;
      // Command-specific values are checked at the command; here only gate
      // the union so typos fail at parse time.
      TC_CHECK(a.engine == "model" || a.engine == "device" || a.engine == "interpret" ||
                   a.engine == "jit" || a.engine == "timed",
               "--engine must be one of model|device|interpret|jit|timed");
    } else if (flag == "--budget") {
      a.budget = std::stoi(value());
    } else if (flag == "--explore") {
      a.explore = std::stoi(value());
    } else if (flag == "--threads") {
      a.threads = std::stoi(value());
    } else if (flag == "--cache") {
      a.cache = value();
    } else if (flag == "--requests") {
      a.requests = std::stoi(value());
    } else if (flag == "--tenants") {
      a.tenants = std::stoi(value());
    } else if (flag == "--workers") {
      a.workers = std::stoi(value());
    } else if (flag == "--numerics") {
      const std::string v = value();
      TC_CHECK(numerics::parse_numerics_mode(v, a.numerics),
               "--numerics must be 'idealized' or 'bitaccurate'");
    } else if (flag == "--numeric-operands") {
      a.numeric_operands = true;
    } else if (flag == "--batch") {
      a.batch = std::stoi(value());
    } else if (flag == "--split-k") {
      a.split_k = std::stoi(value());
    } else if (flag == "--alpha") {
      a.alpha = std::stod(value());
    } else if (flag == "--beta") {
      a.beta = std::stod(value());
    } else if (flag == "--bias") {
      a.bias = true;
    } else if (flag == "--act") {
      a.act = value();
      TC_CHECK(a.act == "none" || a.act == "relu" || a.act == "gelu",
               "--act must be 'none', 'relu' or 'gelu'");
    } else {
      throw Error("unknown flag " + flag);
    }
  }
  if (a.command == "numerics") {
    // Small m/n keep the sweep fast; the interesting axis is k.
    if (!a.mn_set) {
      a.m = 64;
      a.n = 64;
    }
    if (!a.k_set) a.k = 1024;
  }
  if (a.command == "tune" && !a.shape_set) {
    // tune defaults to the shape the recorded single-CTA baselines use, so
    // `tcgemm_cli tune` is directly comparable to the hand-derived 16090.
    a.m = 256;
    a.n = 256;
    a.k = 64;
  }
  return a;
}

int usage() {
  std::cout
      << "usage:\n"
         "  tcgemm_cli run    --m M --n N --k K [--device rtx2070|t4] [--check] [--baseline]\n"
         "                    [--engine interpret|jit]\n"
         "  tcgemm_cli perf   --m M --n N --k K [--device rtx2070|t4] [--baseline]\n"
         "                    [--engine model|device] [--profile] [--top N]\n"
         "                    [--trace-out trace.json]\n"
         "  tcgemm_cli lint   [--m M --n N --k K] [--baseline]\n"
         "  tcgemm_cli schedule [--m M --n N --k K] [--baseline] [--wmma]\n"
         "                    [--device rtx2070|t4]\n"
         "  tcgemm_cli disasm [--m M --n N --k K] [--baseline]\n"
         "  tcgemm_cli check  [--m M --n N --k K]\n"
         "  tcgemm_cli fuzz   [--programs N] [--seed S] [--numerics idealized|bitaccurate]\n"
         "                    [--numeric-operands] [--engine timed|jit]\n"
         "  tcgemm_cli numerics [--m M --n N] [--k KMAX] [--seed S]\n"
         "  tcgemm_cli tune   [--m M --n N --k K] [--device rtx2070|t4] [--budget N]\n"
         "                    [--explore N] [--seed S] [--threads N] [--engine device|model]\n"
         "                    [--top N] [--cache winners.json]\n"
         "  tcgemm_cli serve  [--requests N] [--tenants N] [--workers N]\n"
         "                    [--device rtx2070|t4] [--cache winners.json] [--seed S]\n"
         "                    [--budget N] [--threads N]\n"
         "  tcgemm_cli op     [--m M --n N --k K] [--batch B] [--split-k S]\n"
         "                    [--alpha A] [--beta B] [--bias] [--act none|relu|gelu]\n"
         "                    [--device rtx2070|t4] [--check] [--baseline]\n"
         "                    [--numerics idealized|bitaccurate]\n"
         "common: --json <path> writes machine-readable results;\n"
         "        run accepts --numerics idealized|bitaccurate (HMMA math semantics)\n";
  return 2;
}

/// The padded kernel-contract shape for disasm/lint.
GemmShape contract_shape(const Args& args, const core::HgemmConfig& cfg) {
  return cfg.contract_shape({args.m, args.n, args.k});
}

void json_profile_fields(JsonWriter& j, const prof::Profiler& p, int top_n) {
  const auto& c = p.counters();
  j.key("profile");
  j.begin_object();
  j.field("cycles", c.cycles);
  j.field("instructions", c.instructions);
  j.key("pipes");
  j.begin_object();
  for (const int pipe : {prof::kPipeTensor, prof::kPipeFma, prof::kPipeAlu, prof::kPipeMio}) {
    j.key(prof::pipe_name(pipe));
    j.begin_object();
    j.field("issued", c.pipe_issue[static_cast<std::size_t>(pipe)]);
    j.field("busy_cycles", c.pipe_busy[static_cast<std::size_t>(pipe)]);
    j.field("utilization", c.utilization(pipe, p.partitions()));
    j.end_object();
  }
  j.end_object();
  j.field("l2_port_utilization", c.l2_port_utilization());
  j.field("bw_debt_stall_cycles", c.bw_debt_stall_cycles);
  j.field("smem_bank_replays", c.smem_bank_replays);
  j.field("mshr_highwater", c.mshr_highwater);
  j.field("mio_queue_highwater", c.mio_queue_highwater);
  j.field("ldg_count", c.ldg_count);
  j.field("sts_count", c.sts_count);
  j.field("lds_count", c.lds_count);
  j.field("stg_count", c.stg_count);
  j.key("hot_pcs");
  j.begin_array();
  for (const auto& h : p.hot_pcs(top_n)) {
    j.begin_object();
    j.field("pc", h.pc);
    j.field("instruction", h.text);
    j.field("issued", h.issued);
    j.field("stall_cycles", h.stall_cycles);
    j.field("top_reason", prof::stall_reason_name(h.dominant));
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    auto cfg =
        args.baseline ? core::HgemmConfig::cublas_like() : core::HgemmConfig::optimized();
    cfg.numerics = args.numerics;

    std::ofstream json_os;
    std::optional<JsonWriter> json;
    if (!args.json.empty()) {
      json_os.open(args.json);
      TC_CHECK(json_os.good(), "cannot open " + args.json + " for writing");
      json.emplace(json_os);
      json->begin_object();
      json->field("schema", "tc-cli-v1");
      json->field("command", args.command);
      json->field("config", cfg.name());
      json->field("device", args.device);
      json->field("m", static_cast<std::uint64_t>(args.m));
      json->field("n", static_cast<std::uint64_t>(args.n));
      json->field("k", static_cast<std::uint64_t>(args.k));
    }
    const auto finish_json = [&] {
      if (json) {
        json->end_object();
        json_os << "\n";
        std::cout << "json written to " << args.json << "\n";
      }
    };

    if (args.command == "run") {
      if (args.engine_set) {
        TC_CHECK(args.engine == "interpret" || args.engine == "jit",
                 "run --engine must be 'interpret' or 'jit'");
        cfg.engine = sim::parse_exec_engine(args.engine);
      }
      Rng rng(1);
      HalfMatrix a(args.m, args.k), bt(args.n, args.k);
      a.randomize(rng, -0.5f, 0.5f);
      bt.randomize(rng, -0.5f, 0.5f);
      driver::Device dev(device::spec_by_name(args.device));
      const HalfMatrix c = core::run_hgemm(dev, a, bt, cfg);
      std::cout << "ran " << cfg.name() << " on " << dev.spec().name << " (numerics="
                << numerics::numerics_mode_name(cfg.numerics)
                << ", engine=" << sim::exec_engine_name(cfg.engine) << "): C is " << c.rows()
                << " x " << c.cols() << ", C[0][0] = " << c.at(0, 0) << "\n";
      if (json) json->field("engine", sim::exec_engine_name(cfg.engine));
      int rc = 0;
      if (args.check) {
        // The bit-exact reference must follow the launched semantics.
        const HalfMatrix ref = cfg.numerics == numerics::NumericsMode::kBitAccurate
                                   ? numerics::gemm_bitacc_f16(a, bt)
                                   : core::gemm_ref_tc(a, bt);
        const auto mismatches = core::mismatch_count(c, ref);
        std::cout << "bit-exact mismatches vs reference: " << mismatches << "\n";
        if (json) {
          json->field("numerics", numerics::numerics_mode_name(cfg.numerics));
          json->field("mismatches", static_cast<std::uint64_t>(mismatches));
        }
        rc = mismatches == 0 ? 0 : 1;
      }
      finish_json();
      return rc;
    }

    if (args.command == "perf" && args.engine_set) {
      TC_CHECK(args.engine == "model" || args.engine == "device",
               "perf --engine must be 'model' or 'device'");
    }
    if (args.command == "perf" && args.engine == "device") {
      // Cycle-level multi-SM simulation of the whole grid (shared L2/DRAM,
      // dynamic CTA dispatch). Cost scales with m*n*k — intended for the
      // small shapes the cross-validation harness uses, not W = 16384.
      const device::DeviceSpec spec = device::spec_by_name(args.device);
      const GemmShape shape = contract_shape(args, cfg);
      model::ValidateKernelInput kin;
      kin.make_kernel = [&](const GemmShape& s) { return core::hgemm_kernel(cfg, s); };
      kin.name = cfg.name();
      kin.bm = cfg.bm;
      kin.bn = cfg.bn;
      kin.bk = cfg.bk;
      kin.ctas_per_sm = core::surrogate_ctas_per_sm(spec, cfg);
      kin.order = cfg.launch_order;
      kin.swizzle_max_grid_x = cfg.swizzle_max_grid_x;
      const model::WaveValidation v = model::validate_wave(spec, kin, shape);
      const double seconds =
          spec.cycles_to_seconds(static_cast<double>(v.device_cycles));
      const double tflops = shape.flops() / seconds / 1e12;
      std::cout << cfg.name() << " on " << spec.name << " for " << shape.m << " x " << shape.n
                << " x " << shape.k << " (engine=device):\n"
                << "  " << tflops << " TFLOPS, " << seconds * 1e3 << " ms, "
                << v.device_cycles << " device cycles over " << v.sms_used << " SMs\n"
                << v.report();
      if (json) {
        json->key("device_perf");
        json->begin_object();
        json->field("engine", "device");
        json->field("tflops", tflops);
        json->field("ms", seconds * 1e3);
        json->field("device_cycles", v.device_cycles);
        json->field("model_cycles", v.model_cycles);
        json->field("rel_error", v.rel_error);
        json->field("model_l2_hit_rate", v.model_l2_hit_rate);
        json->field("device_l2_hit_rate", v.device_l2_hit_rate);
        json->field("tail_imbalance", v.tail_imbalance);
        json->field("sms_used", static_cast<std::uint64_t>(v.sms_used));
        json->field("ctas_per_sm", static_cast<std::uint64_t>(kin.ctas_per_sm));
        json->end_object();
      }
      finish_json();
      return 0;
    }

    if (args.command == "perf") {
      const device::DeviceSpec spec = device::spec_by_name(args.device);
      core::PerfEstimator est(spec, cfg);
      const auto p = est.estimate({args.m, args.n, args.k});
      std::cout << cfg.name() << " on " << est.spec().name << " for " << args.m << " x "
                << args.n << " x " << args.k << ":\n"
                << "  " << p.tflops << " TFLOPS, " << p.seconds * 1e3 << " ms, " << p.waves
                << " waves, L2 hit " << p.l2_hit_rate << ", " << p.cycles_per_iter
                << " cycles/iteration\n";
      if (json) {
        json->key("perf");
        json->begin_object();
        json->field("tflops", p.tflops);
        json->field("ms", p.seconds * 1e3);
        json->field("waves", p.waves);
        json->field("l2_hit_rate", p.l2_hit_rate);
        json->field("dram_efficiency", p.dram_efficiency);
        json->field("cycles_per_iter", p.cycles_per_iter);
        json->field("ctas_per_sm", p.ctas_per_sm);
        json->end_object();
      }

      if (args.profile) {
        std::optional<prof::TraceWriter> trace;
        if (!args.trace_out.empty()) trace.emplace();
        const core::HgemmProfile hp = core::profile_hgemm(
            spec, cfg, {args.m, args.n, args.k}, trace ? &*trace : nullptr);
        std::cout << "\nsteady-state profile (" << hp.iterations << " main-loop iterations, "
                  << hp.ctas_per_sm << " CTAs/SM, L2 hit "
                  << fmt_fixed(hp.l2_hit_rate, 2) << "):\n";
        hp.profiler.print_report(std::cout, args.top);
        if (trace) {
          trace->write_file(args.trace_out);
          std::cout << "trace written to " << args.trace_out
                    << " (load in chrome://tracing or https://ui.perfetto.dev)\n";
        }
        if (json) json_profile_fields(*json, hp.profiler, args.top);
      }
      finish_json();
      return 0;
    }

    if (args.command == "lint") {
      const GemmShape shape = contract_shape(args, cfg);
      const sass::Program prog = core::hgemm_kernel(cfg, shape);
      sass::validate(prog);
      const auto base = sass::lint(prog);
      const auto slack = sass::lint(prog, &sim::fixed_latency);
      std::cout << cfg.name() << " (" << prog.code.size() << " instructions): " << base.size()
                << " schedule warnings, " << slack.size() << " slack findings\n";
      for (const auto& w : base) std::cout << "  [schedule] " << w << "\n";
      for (const auto& w : slack) std::cout << "  [slack] " << w << "\n";
      if (json) {
        json->key("schedule_warnings");
        json->begin_array();
        for (const auto& w : base) json->value(w);
        json->end_array();
        json->key("slack_findings");
        json->begin_array();
        for (const auto& w : slack) json->value(w);
        json->end_array();
      }
      finish_json();
      return 0;
    }

    if (args.command == "schedule") {
      // The scheduler's own before/after story on the real kernel: the
      // minimal mode only inserts stalls/barriers into the semantic order,
      // the full mode also hoists independent work into stall shadows.
      const device::DeviceSpec spec = device::spec_by_name(args.device);
      const GemmShape shape = args.wmma
                                  ? GemmShape{16, 128, 64}
                                  : contract_shape(args, cfg);
      const std::string kernel_name = args.wmma ? "wmma_naive" : cfg.name();
      const sass::Program virt = args.wmma ? core::wmma_naive_kernel_virtual(shape)
                                           : core::hgemm_kernel_virtual(cfg, shape);

      sched::ScheduleOptions minimal_opts;
      minimal_opts.reorder = false;
      sched::ScheduleStats minimal_stats;
      sched::ScheduleStats full_stats;
      const sass::Program minimal = sched::schedule(virt, minimal_opts, minimal_stats);
      const sass::Program full = sched::schedule(virt, sched::ScheduleOptions{}, full_stats);

      // Single-CTA timed cycles for each mode (grid (1,1), fixed seed).
      const auto timed_cycles = [&](const sass::Program& prog) {
        driver::Device dev(spec);
        Rng rng(7);
        HalfMatrix a(shape.m, shape.k), bt(shape.n, shape.k);
        a.randomize(rng, -0.5f, 0.5f);
        bt.randomize(rng, -0.5f, 0.5f);
        auto da = dev.alloc<half>(a.size());
        auto db = dev.alloc<half>(bt.size());
        auto dc = dev.alloc<half>(shape.m * shape.n);
        dev.upload(da, std::span<const half>(a.data(), a.size()));
        dev.upload(db, std::span<const half>(bt.data(), bt.size()));
        sim::Launch launch;
        launch.program = &prog;
        launch.params = {da.addr, db.addr, dc.addr};
        const sim::CtaCoord cta{0, 0};
        return dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device()).cycles;
      };
      const std::uint64_t minimal_cycles = timed_cycles(minimal);
      const std::uint64_t full_cycles = timed_cycles(full);
      const auto slack = sass::lint(full, &sim::fixed_latency);

      const auto print_stats = [](const char* mode, const sched::ScheduleStats& s,
                                  std::uint64_t cycles) {
        std::cout << "  " << mode << ": " << s.instructions << " instructions (" << s.nops_inserted
                  << " NOPs), " << s.reordered << " reordered, " << s.barriers_used
                  << " barriers, " << s.waits_placed << " waits (" << s.waits_elided
                  << " elided, " << s.waits_dropped << " dropped, " << s.waits_hoisted
                  << " hoisted), " << s.reuse_flags << " reuse flags, "
                  << s.static_issue_cycles << " static issue cycles -> " << cycles
                  << " timed cycles\n";
      };
      std::cout << kernel_name << " on " << spec.name << " for " << shape.m << " x " << shape.n
                << " x " << shape.k << " (single CTA):\n";
      print_stats("minimal (no reorder)", minimal_stats, minimal_cycles);
      print_stats("full                ", full_stats, full_cycles);
      std::cout << "  stall slack: " << slack.size()
                << " findings from sass::lint over the shipped schedule\n";
      for (const auto& w : slack) std::cout << "    [slack] " << w << "\n";

      if (json) {
        const auto stats_fields = [&](const char* key, const sched::ScheduleStats& s,
                                      std::uint64_t cycles) {
          json->key(key);
          json->begin_object();
          json->field("instructions", static_cast<std::uint64_t>(s.instructions));
          json->field("nops_inserted", static_cast<std::uint64_t>(s.nops_inserted));
          json->field("reordered", static_cast<std::uint64_t>(s.reordered));
          json->field("barriers_used", static_cast<std::uint64_t>(s.barriers_used));
          json->field("waits_placed", static_cast<std::uint64_t>(s.waits_placed));
          json->field("waits_elided", static_cast<std::uint64_t>(s.waits_elided));
          json->field("waits_dropped", static_cast<std::uint64_t>(s.waits_dropped));
          json->field("waits_hoisted", static_cast<std::uint64_t>(s.waits_hoisted));
          json->field("reuse_flags", static_cast<std::uint64_t>(s.reuse_flags));
          json->field("static_issue_cycles",
                      static_cast<std::uint64_t>(s.static_issue_cycles));
          json->field("timed_cycles", cycles);
          json->end_object();
        };
        json->field("kernel", kernel_name);
        stats_fields("minimal", minimal_stats, minimal_cycles);
        stats_fields("full", full_stats, full_cycles);
        json->key("slack_findings");
        json->begin_array();
        for (const auto& w : slack) json->value(w);
        json->end_array();
      }
      finish_json();
      return 0;
    }

    if (args.command == "disasm") {
      const GemmShape shape = contract_shape(args, cfg);
      std::cout << core::hgemm_kernel(cfg, shape).disassemble();
      return 0;
    }

    if (args.command == "check") {
      // Every built-in kernel at its padded contract shape.
      const auto round_up = [](std::size_t v, std::size_t to) {
        return std::max(to, (v + to - 1) / to * to);
      };
      struct Target {
        std::string name;
        sass::Program prog;
      };
      const GemmShape wmma_shape{round_up(args.m, 16), round_up(args.n, 128),
                                 round_up(args.k, 16)};
      std::vector<Target> targets;
      targets.push_back({"hgemm_optimized",
                         core::hgemm_kernel(core::HgemmConfig::optimized(),
                                            contract_shape(args, core::HgemmConfig::optimized()))});
      targets.push_back({"hgemm_cublas_like",
                         core::hgemm_kernel(core::HgemmConfig::cublas_like(),
                                            contract_shape(args, core::HgemmConfig::cublas_like()))});
      targets.push_back({"wmma_naive", core::wmma_naive_kernel(wmma_shape)});

      int total_errors = 0;
      if (json) {
        json->key("kernels");
        json->begin_array();
      }
      for (const auto& t : targets) {
        const auto diags = check::find_hazards(t.prog);
        const int errors = sass::count_errors(diags);
        const int warnings = static_cast<int>(diags.size()) - errors;
        total_errors += errors;
        std::cout << t.name << " (" << t.prog.code.size() << " instructions): " << errors
                  << " errors, " << warnings << " warnings\n";
        for (const auto& d : diags) std::cout << "  " << sass::format(d) << "\n";
        if (json) {
          json->begin_object();
          json->field("kernel", t.name);
          json->field("instructions", static_cast<std::uint64_t>(t.prog.code.size()));
          json->field("errors", static_cast<std::uint64_t>(errors));
          json->field("warnings", static_cast<std::uint64_t>(warnings));
          json->key("diagnostics");
          json->begin_array();
          for (const auto& d : diags) json->value(sass::format(d));
          json->end_array();
          json->end_object();
        }
      }
      if (json) json->end_array();
      finish_json();
      return total_errors == 0 ? 0 : 1;
    }

    if (args.command == "fuzz") {
      if (args.engine_set) {
        TC_CHECK(args.engine == "timed" || args.engine == "jit",
                 "fuzz --engine must be 'timed' or 'jit'");
      }
      check::FuzzOptions fopts;
      fopts.numerics = args.numerics;
      fopts.numeric_operands = args.numeric_operands;
      const bool jit_fuzz = args.engine_set && args.engine == "jit";
      fopts.compare = jit_fuzz ? check::FuzzCompare::kJitVsInterpreter
                               : check::FuzzCompare::kFunctionalVsTimed;
      const check::FuzzReport rep = check::run_fuzz(args.seed, args.programs, fopts);
      std::cout << "fuzzed " << rep.programs << " programs (seed " << args.seed
                << ", numerics=" << numerics::numerics_mode_name(fopts.numerics)
                << (fopts.numeric_operands ? ", numeric operands" : "")
                << ", engines=" << (jit_fuzz ? "jit-vs-interpreter" : "functional-vs-timed")
                << "): " << rep.divergences << " divergences, " << rep.failures.size()
                << " failures\n";
      for (const auto& f : rep.failures) {
        std::cout << "\nseed " << f.seed << " [" << f.phase << "] shrunk "
                  << f.original_size << " -> " << f.shrunk_size << " instructions\n"
                  << f.detail << "\n"
                  << f.program;
      }
      if (json) {
        json->field("engines", jit_fuzz ? "jit-vs-interpreter" : "functional-vs-timed");
        json->field("programs", static_cast<std::uint64_t>(rep.programs));
        json->field("divergences", static_cast<std::uint64_t>(rep.divergences));
        json->key("failures");
        json->begin_array();
        for (const auto& f : rep.failures) {
          json->begin_object();
          json->field("seed", f.seed);
          json->field("phase", f.phase);
          json->field("detail", f.detail);
          json->field("original_size", static_cast<std::uint64_t>(f.original_size));
          json->field("shrunk_size", static_cast<std::uint64_t>(f.shrunk_size));
          json->field("program", f.program);
          json->end_object();
        }
        json->end_array();
      }
      finish_json();
      return rep.ok() ? 0 : 1;
    }

    if (args.command == "tune") {
      if (args.engine_set) {
        TC_CHECK(args.engine == "model" || args.engine == "device",
                 "tune --engine must be 'model' or 'device'");
      }
      const device::DeviceSpec spec = device::spec_by_name(args.device);
      const tune::CacheKey ckey = tune::cache_key(spec, {args.m, args.n, args.k});
      tune::TuneCache cache;
      if (!args.cache.empty()) {
        tune::CacheLoadStats cstats;
        cache = tune::TuneCache::load(args.cache, &cstats);
        for (const auto& d : cstats.diagnostics) {
          std::cout << "cache: rejected entry — " << d << "\n";
        }
        if (const tune::CacheEntry* hit = cache.find(ckey)) {
          // Warm path: the persisted winner is served bit-for-bit; no search.
          std::cout << "cache hit for " << ckey.str() << " (bucket of " << args.m << " x "
                    << args.n << " x " << args.k << "): " << tune::candidate_name(hit->cfg)
                    << " at " << hit->sim_cycles << " simulated cycles (engine "
                    << hit->engine << ", budget " << hit->budget << ", seed " << hit->seed
                    << ")\n";
          if (json) {
            json->key("tune");
            json->begin_object();
            json->field("engine", "cache");
            json->key("cache");
            json->begin_object();
            json->field("hit", true);
            json->field("key", ckey.str());
            json->field("bucket_m", static_cast<std::uint64_t>(ckey.m));
            json->field("bucket_n", static_cast<std::uint64_t>(ckey.n));
            json->field("bucket_k", static_cast<std::uint64_t>(ckey.k));
            json->end_object();
            json->key("best");
            json->begin_object();
            json->field("config", tune::candidate_name(hit->cfg));
            json->field("sim_cycles", hit->sim_cycles);
            json->end_object();
            json->end_object();
          }
          finish_json();
          return 0;
        }
        std::cout << "cache miss for " << ckey.str() << ": tuning at the bucket shape\n";
      }
      tune::TuneOptions opt;
      // With a cache, tune at the bucket's canonical shape so the stored
      // winner serves every shape that falls in the bucket.
      opt.shape = args.cache.empty() ? GemmShape{args.m, args.n, args.k}
                                     : tune::bucket_shape(ckey);
      opt.budget = args.budget;
      opt.explore = args.explore;
      opt.seed = args.seed;
      opt.threads = args.threads;
      // Timed-device is the tuner's default engine (the acceptance metric);
      // --engine model switches to the wave pipeline for paper-scale shapes.
      opt.engine = args.engine_set && args.engine == "model" ? tune::Engine::kWaveModel
                                                            : tune::Engine::kTimedDevice;
      const tune::TuneResult r = tune::tune(spec, opt);
      const tune::Candidate& best = r.best();

      std::cout << "tuned " << spec.name << " @ " << args.m << " x " << args.n << " x "
                << args.k << " (engine=" << tune::engine_name(opt.engine) << ", seed "
                << opt.seed << "): " << r.prune.raw << " raw -> " << r.prune.legal
                << " legal -> " << r.prune.evaluated << " evaluated\n"
                << "pruned: " << r.prune.tiling << " tiling, " << r.prune.generator
                << " generator, " << r.prune.registers << " registers, " << r.prune.resources
                << " resources, " << r.prune.launch_order << " launch_order\n";
      TablePrinter t({"config", "regs", "CTAs/SM", "model rank", "model cycles", "sim cycles",
                      "TFLOPS"});
      int shown = 0;
      for (const auto& c : r.ranked) {
        if (!c.evaluated || shown++ >= args.top) continue;
        t.add_row({c.name + (c.explored ? " *" : ""), std::to_string(c.regs),
                   std::to_string(c.occ.ctas_per_sm), std::to_string(c.model_rank),
                   fmt_fixed(c.model.cycles, 0), std::to_string(c.sim_cycles),
                   fmt_fixed(c.tflops, 2)});
      }
      t.print(std::cout);
      std::cout << "(* = seeded exploration pick)\n"
                << "best: " << best.name << " at " << best.sim_cycles << " simulated cycles ("
                << fmt_fixed(best.tflops, 2) << " TFLOPS, " << best.occ.ctas_per_sm
                << " CTAs/SM, model rank " << best.model_rank << ")\n"
                << "model-vs-simulated rank inversion rate: "
                << fmt_fixed(tune::rank_inversion_rate(r), 3) << "\n";

      if (!args.cache.empty()) {
        tune::CacheEntry e;
        e.key = ckey;
        e.cfg = best.cfg;
        e.sim_cycles = best.sim_cycles;
        e.budget = opt.budget;
        e.seed = opt.seed;
        e.engine = tune::engine_name(opt.engine);
        cache.insert(std::move(e));
        cache.save(args.cache);
        std::cout << "cache: stored winner for " << ckey.str() << " in " << args.cache << "\n";
      }

      if (json) {
        json->key("tune");
        json->begin_object();
        json->field("engine", tune::engine_name(opt.engine));
        if (!args.cache.empty()) {
          json->key("cache");
          json->begin_object();
          json->field("hit", false);
          json->field("stored", true);
          json->field("key", ckey.str());
          json->field("bucket_m", static_cast<std::uint64_t>(ckey.m));
          json->field("bucket_n", static_cast<std::uint64_t>(ckey.n));
          json->field("bucket_k", static_cast<std::uint64_t>(ckey.k));
          json->end_object();
        }
        json->field("budget", static_cast<std::uint64_t>(opt.budget));
        json->field("seed", opt.seed);
        json->field("inversion_rate", tune::rank_inversion_rate(r));
        json->key("prune");
        json->begin_object();
        json->field("raw", static_cast<std::uint64_t>(r.prune.raw));
        json->field("tiling", static_cast<std::uint64_t>(r.prune.tiling));
        json->field("generator", static_cast<std::uint64_t>(r.prune.generator));
        json->field("registers", static_cast<std::uint64_t>(r.prune.registers));
        json->field("resources", static_cast<std::uint64_t>(r.prune.resources));
        json->field("launch_order", static_cast<std::uint64_t>(r.prune.launch_order));
        json->field("legal", static_cast<std::uint64_t>(r.prune.legal));
        json->field("evaluated", static_cast<std::uint64_t>(r.prune.evaluated));
        json->end_object();
        const auto candidate_fields = [&](const tune::Candidate& c) {
          json->begin_object();
          json->field("config", c.name);
          json->field("regs", static_cast<std::uint64_t>(c.regs));
          json->field("ctas_per_sm", static_cast<std::uint64_t>(c.occ.ctas_per_sm));
          json->field("limiter", device::limiter_name(c.occ.limiter));
          json->field("model_rank", static_cast<std::uint64_t>(c.model_rank));
          json->field("model_cycles", c.model.cycles);
          json->field("sim_cycles", c.sim_cycles);
          json->field("tflops", c.tflops);
          json->field("sms_used", static_cast<std::uint64_t>(c.sms_used));
          json->field("explored", c.explored);
          json->field("hazard_diags", static_cast<std::uint64_t>(c.hazard_diags));
          json->end_object();
        };
        json->key("best");
        candidate_fields(best);
        json->key("candidates");
        json->begin_array();
        for (const auto& c : r.ranked) {
          if (c.evaluated) candidate_fields(c);
        }
        json->end_array();
        json->end_object();
      }
      finish_json();
      return 0;
    }

    if (args.command == "numerics") {
      // Error-vs-shape curves: m x n fixed, k doubling from 64 up to --k,
      // fresh seeded inputs per point, all three semantics against the
      // double-precision oracle. Reproduces the related-work observation
      // that FP16 accumulation degrades with k while FP32 stays flat.
      numerics::CurveOptions copts;
      copts.m = args.m;
      copts.n = args.n;
      copts.seed = args.seed;
      copts.ks.clear();
      for (std::size_t kk = 64; kk <= args.k; kk *= 2) copts.ks.push_back(kk);
      TC_CHECK(!copts.ks.empty(), "numerics needs --k >= 64");
      const std::vector<numerics::ErrorPoint> points = numerics::error_curves(copts);

      const auto sci = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3e", v);
        return std::string(buf);
      };
      std::cout << "numerics error curves at " << copts.m << " x " << copts.n
                << " (seed " << copts.seed << ", values in [" << copts.lo << ", "
                << copts.hi << "]), max/mean relative error vs double oracle:\n";
      TablePrinter t({"k", "idealized f16 max", "bitacc f16 max", "bitacc f32 max",
                      "bitacc f16 mean", "bitacc f32 mean"});
      for (const auto& p : points) {
        t.add_row({std::to_string(p.k), sci(p.idealized_f16.max_rel),
                   sci(p.bitacc_f16.max_rel), sci(p.bitacc_f32.max_rel),
                   sci(p.bitacc_f16.mean_rel), sci(p.bitacc_f32.mean_rel)});
      }
      t.print(std::cout);

      if (json) {
        json->key("numerics");
        json->begin_object();
        json->field("seed", copts.seed);
        json->key("modes");
        json->begin_array();
        json->value(numerics::numerics_mode_name(numerics::NumericsMode::kIdealized));
        json->value(numerics::numerics_mode_name(numerics::NumericsMode::kBitAccurate));
        json->end_array();
        json->key("points");
        json->begin_array();
        for (const auto& p : points) {
          json->begin_object();
          json->field("k", static_cast<std::uint64_t>(p.k));
          json->field("idealized_f16_max_rel", p.idealized_f16.max_rel);
          json->field("idealized_f16_mean_rel", p.idealized_f16.mean_rel);
          json->field("bitacc_f16_max_rel", p.bitacc_f16.max_rel);
          json->field("bitacc_f16_mean_rel", p.bitacc_f16.mean_rel);
          json->field("bitacc_f32_max_rel", p.bitacc_f32.max_rel);
          json->field("bitacc_f32_mean_rel", p.bitacc_f32.mean_rel);
          json->end_object();
        }
        json->end_array();
        json->end_object();
      }
      finish_json();
      return 0;
    }

    if (args.command == "op") {
      op::GemmOp gemm;
      gemm.shape = {args.m, args.n, args.k};
      gemm.batch.count = args.batch;
      gemm.split_k = args.split_k;
      gemm.epilogue.alpha = static_cast<float>(args.alpha);
      gemm.epilogue.beta = static_cast<float>(args.beta);
      gemm.epilogue.bias = args.bias;
      gemm.epilogue.act = args.act == "relu"   ? core::Activation::kRelu
                          : args.act == "gelu" ? core::Activation::kGelu
                                               : core::Activation::kNone;
      const op::OpPlan plan = op::lower(gemm, cfg);

      const auto batch = static_cast<std::size_t>(args.batch);
      Rng rng(args.seed);
      std::vector<half> a(batch * args.m * args.k);
      std::vector<half> bt(batch * args.n * args.k);
      std::vector<half> c_in(batch * args.m * args.n);
      std::vector<half> bias(args.n);
      for (auto& v : a) v = rng.next_half(-0.5f, 0.5f);
      for (auto& v : bt) v = rng.next_half(-0.5f, 0.5f);
      for (auto& v : c_in) v = rng.next_half(-0.5f, 0.5f);
      for (auto& v : bias) v = rng.next_half(-0.5f, 0.5f);
      op::OpInputs in{a, bt, c_in, bias};

      driver::Device dev(device::spec_by_name(args.device));
      const std::vector<half> out = op::run_gemm_op(dev, gemm, in, cfg);

      const auto role_name = [](op::LaunchRole r) {
        return r == op::LaunchRole::kMain ? "main" : "reduce";
      };
      std::cout << "op on " << dev.spec().name << ": " << args.batch << " x (" << args.m
                << " x " << args.n << " x " << args.k << "), split_k " << args.split_k
                << ", epilogue alpha " << args.alpha << " beta " << args.beta
                << (args.bias ? " +bias" : "") << " act " << args.act << " -> "
                << plan.launches.size() << " launch(es), "
                << (plan.fused ? "fused epilogue" : "separate reduce/epilogue pass")
                << ", workspace " << plan.workspace_elems << " halves\n";
      for (const auto& l : plan.launches) {
        std::cout << "  [" << role_name(l.role) << "] " << l.program.name << " grid ("
                  << l.grid_x << ", " << l.grid_y << ", " << l.grid_z << "), "
                  << l.program.code.size() << " instructions\n";
      }

      int rc = 0;
      std::size_t mismatches = 0;
      if (args.check) {
        const std::vector<half> ref = op::gemm_op_ref(gemm, in, cfg, cfg.numerics);
        for (std::size_t i = 0; i < out.size(); ++i) {
          mismatches += out[i].bits() != ref[i].bits() ? 1 : 0;
        }
        std::cout << "bit-exact mismatches vs op reference: " << mismatches << "\n";
        rc = mismatches == 0 ? 0 : 1;
      }

      if (json) {
        json->key("op");
        json->begin_object();
        json->field("batch", static_cast<std::uint64_t>(args.batch));
        json->field("split_k", static_cast<std::uint64_t>(args.split_k));
        json->field("alpha", args.alpha);
        json->field("beta", args.beta);
        json->field("bias", args.bias);
        json->field("act", args.act);
        json->field("fused", plan.fused);
        json->field("workspace_elems", static_cast<std::uint64_t>(plan.workspace_elems));
        json->key("launches");
        json->begin_array();
        for (const auto& l : plan.launches) {
          json->begin_object();
          json->field("role", role_name(l.role));
          json->field("kernel", l.program.name);
          json->field("grid_x", static_cast<std::uint64_t>(l.grid_x));
          json->field("grid_y", static_cast<std::uint64_t>(l.grid_y));
          json->field("grid_z", static_cast<std::uint64_t>(l.grid_z));
          json->field("instructions", static_cast<std::uint64_t>(l.program.code.size()));
          json->end_object();
        }
        json->end_array();
        if (args.check) {
          json->field("numerics", numerics::numerics_mode_name(cfg.numerics));
          json->field("mismatches", static_cast<std::uint64_t>(mismatches));
        }
        json->end_object();
      }
      finish_json();
      return rc;
    }

    if (args.command == "serve") {
      const device::DeviceSpec spec = device::spec_by_name(args.device);
      serve::ServerOptions sopt;
      sopt.spec = spec;
      sopt.workers = args.workers;
      sopt.threads = args.threads;
      sopt.tune_budget = args.budget;
      sopt.cache_path = args.cache;

      serve::TrafficOptions topt;
      topt.requests = args.requests;
      topt.tenants = args.tenants;
      topt.seed = args.seed;
      const std::vector<serve::Request> traffic = serve::llm_traffic(topt);

      serve::Server server(sopt);
      for (const auto& d : server.load_stats().diagnostics) {
        std::cout << "cache: rejected entry — " << d << "\n";
      }
      const serve::Metrics m = server.run(traffic);
      const auto& c = m.counters;

      std::cout << "served " << c.completed << "/" << c.requests << " requests (" << c.shed
                << " shed) on " << spec.name << " with " << args.workers
                << " workers (seed " << args.seed << ")\n"
                << "  batches: " << c.batches << " (" << fmt_fixed(
                       c.batches > 0 ? static_cast<double>(c.batched_requests) /
                                           static_cast<double>(c.batches)
                                     : 0.0, 2)
                << " requests/pass), cache hit rate " << fmt_fixed(m.cache_hit_rate, 3)
                << " (" << c.cache_hits << "/" << c.cache_lookups << "), " << c.tune_evals
                << " tune evals, " << c.hazard_diags << " hazard diags\n"
                << "  latency: p50 " << fmt_fixed(m.p50_cycles, 0) << " cycles ("
                << fmt_fixed(m.p50_ms, 3) << " ms), p99 " << fmt_fixed(m.p99_cycles, 0)
                << " cycles (" << fmt_fixed(m.p99_ms, 3) << " ms)\n"
                << "  throughput: " << fmt_fixed(m.qps, 1) << " QPS, worker utilization "
                << fmt_fixed(m.worker_utilization, 3) << " over "
                << m.makespan_cycles << " cycles\n";
      TablePrinter t({"tenant", "weight", "accepted", "shed", "completed", "share",
                      "p50 cycles", "p99 cycles"});
      for (const auto& ts : m.tenants) {
        t.add_row({std::to_string(ts.tenant), std::to_string(ts.weight),
                   std::to_string(ts.accepted), std::to_string(ts.shed),
                   std::to_string(ts.completed), fmt_fixed(ts.share, 3),
                   fmt_fixed(ts.p50_cycles, 0), fmt_fixed(ts.p99_cycles, 0)});
      }
      t.print(std::cout);
      if (!args.cache.empty()) {
        std::cout << "cache: " << server.cache().size() << " entries in " << args.cache << "\n";
      }

      if (json) {
        json->key("serve");
        serve::write_metrics_json(*json, m);
      }
      finish_json();
      return 0;
    }

    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
