// Quickstart: multiply two half-precision matrices with the optimized
// Tensor-Core HGEMM on the simulated RTX 2070, validate the result against
// the bit-exact Tensor Core reference, and estimate full-device performance.
//
//   $ ./quickstart
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/hgemm.hpp"
#include "core/reference.hpp"
#include "driver/device.hpp"

int main() {
  using namespace tc;

  // 1. Build a workload: C(512x512) = A(512x256) * B(256x512).
  //    B is supplied transposed (n x k row-major), as in the paper's setup.
  Rng rng(2024);
  HalfMatrix a(512, 256);
  HalfMatrix bt(512, 256);
  a.randomize(rng, -1.0f, 1.0f);
  bt.randomize(rng, -1.0f, 1.0f);

  // 2. Run the optimized kernel on a simulated RTX 2070 (functional mode:
  //    the real SASS executes instruction by instruction).
  driver::Device dev(device::rtx2070());
  const HalfMatrix c = core::run_hgemm(dev, a, bt);

  // 3. Validate: bit-exact against the HMMA.1688.F16 semantics, and within
  //    FP16 accumulation tolerance of an FP32 reference.
  const HalfMatrix ref_tc = core::gemm_ref_tc(a, bt);
  const FloatMatrix ref_f32 = core::gemm_ref_f32(a, bt);
  std::cout << "C[0][0] = " << c.at(0, 0) << " (reference " << ref_tc.at(0, 0) << ")\n";
  std::cout << "bit-exact mismatches vs Tensor Core reference: "
            << core::mismatch_count(c, ref_tc) << "\n";
  std::cout << "max |C - fp32 reference| = " << core::max_abs_diff(c, ref_f32) << "\n\n";

  // 4. Estimate full-device throughput for production sizes (Section VII).
  core::PerfEstimator est(device::rtx2070(), core::HgemmConfig::optimized());
  TablePrinter t({"m=n=k", "TFLOPS", "ms", "waves"});
  for (const std::size_t w : {2048ull, 4096ull, 8192ull}) {
    const auto p = est.estimate({w, w, w});
    t.add_row({std::to_string(w), fmt_fixed(p.tflops, 1), fmt_fixed(p.seconds * 1e3, 2),
               fmt_fixed(p.waves, 0)});
  }
  t.print(std::cout);
  return 0;
}
