// MLP inference on the simulated GPU: the fully-connected-layer workload the
// paper's introduction motivates. A small 3-layer perceptron runs batched
// forward passes where every layer is an HGEMM (weights pre-transposed, the
// paper's B^T convention), followed by a host-side bias + ReLU.
//
// The example checks the simulated network against a float reference and
// then reports what a production-sized MLP would sustain on RTX2070 and T4.
#include <cmath>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/hgemm.hpp"
#include "core/reference.hpp"
#include "driver/device.hpp"

using namespace tc;

namespace {

/// One dense layer: Y = relu(X * W^T + b) in half precision via the kernel.
HalfMatrix dense(driver::Device& dev, const HalfMatrix& x, const HalfMatrix& wt,
                 const std::vector<half>& bias, bool relu) {
  HalfMatrix y = core::run_hgemm(dev, x, wt);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    for (std::size_t j = 0; j < y.cols(); ++j) {
      float v = y.at(i, j).to_float() + bias[j].to_float();
      if (relu && v < 0.0f) v = 0.0f;
      y.at(i, j) = half(v);
    }
  }
  return y;
}

float reference_forward(const std::vector<HalfMatrix>& weights,
                        const std::vector<std::vector<half>>& biases, const HalfMatrix& x0,
                        std::size_t row, std::size_t col) {
  // Float-precision forward pass of one output element for validation.
  std::vector<std::vector<float>> act(x0.rows(), std::vector<float>(x0.cols()));
  for (std::size_t i = 0; i < x0.rows(); ++i) {
    for (std::size_t j = 0; j < x0.cols(); ++j) act[i][j] = x0.at(i, j).to_float();
  }
  for (std::size_t layer = 0; layer < weights.size(); ++layer) {
    const auto& wt = weights[layer];
    std::vector<std::vector<float>> next(act.size(), std::vector<float>(wt.rows()));
    for (std::size_t i = 0; i < act.size(); ++i) {
      for (std::size_t o = 0; o < wt.rows(); ++o) {
        float acc = biases[layer][o].to_float();
        for (std::size_t kk = 0; kk < wt.cols(); ++kk) {
          acc += act[i][kk] * wt.at(o, kk).to_float();
        }
        next[i][o] = (layer + 1 < weights.size() && acc < 0.0f) ? 0.0f : acc;
      }
    }
    act = std::move(next);
  }
  return act[row][col];
}

}  // namespace

int main() {
  Rng rng(7);
  const std::size_t batch = 128;
  const std::vector<std::size_t> dims = {256, 512, 512, 64};  // in -> h1 -> h2 -> out

  // Weights stored transposed: W^T is (out x in) row-major.
  std::vector<HalfMatrix> weights;
  std::vector<std::vector<half>> biases;
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    HalfMatrix wt(dims[l + 1], dims[l]);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dims[l]));
    wt.randomize(rng, -scale, scale);
    weights.push_back(std::move(wt));
    biases.push_back(rng.half_vector(dims[l + 1], -0.1f, 0.1f));
  }

  HalfMatrix x(batch, dims[0]);
  x.randomize(rng, -1.0f, 1.0f);

  driver::Device dev(device::rtx2070());
  HalfMatrix act = x;
  for (std::size_t l = 0; l < weights.size(); ++l) {
    act = dense(dev, act, weights[l], biases[l], /*relu=*/l + 1 < weights.size());
  }

  std::cout << "3-layer MLP forward pass on the simulated RTX 2070\n";
  std::cout << "batch " << batch << ", dims 256 -> 512 -> 512 -> 64\n";
  const float got = act.at(0, 0).to_float();
  const float want = reference_forward(weights, biases, x, 0, 0);
  std::cout << "logit[0][0] = " << got << " (float reference " << want << ", fp16 error "
            << std::abs(got - want) << ")\n\n";

  // Throughput of production-sized layers (the GEMM shapes behind large-batch
  // MLP/transformer FFN inference).
  std::cout << "estimated HGEMM throughput for production layer shapes:\n";
  TablePrinter t({"layer (m x n x k)", "RTX2070 TFLOPS", "T4 TFLOPS"});
  core::PerfEstimator est2070(device::rtx2070(), core::HgemmConfig::optimized());
  core::PerfEstimator estT4(device::t4(), core::HgemmConfig::optimized());
  const GemmShape shapes[] = {
      {8192, 4096, 1024},   // batchx4k FFN in
      {8192, 1024, 4096},   // FFN out
      {16384, 4096, 4096},  // giant batch
  };
  for (const auto& s : shapes) {
    t.add_row({std::to_string(s.m) + " x " + std::to_string(s.n) + " x " + std::to_string(s.k),
               fmt_fixed(est2070.estimate(s).tflops, 1), fmt_fixed(estT4.estimate(s).tflops, 1)});
  }
  t.print(std::cout);
  return 0;
}
