// Layout explorer: prints the paper's Fig. 1 register layouts, the Fig. 2
// HMMA operand map, a disassembly excerpt of the optimized kernel's main
// loop, and the HMMA latency probe — everything Section IV "demystifies",
// as executable output.
#include <iomanip>
#include <iostream>

#include "core/config.hpp"
#include "core/kernel_gen.hpp"
#include "sass/validator.hpp"
#include "sim/mma_exec.hpp"

using namespace tc;

namespace {

void print_layout(const char* title, bool row_major) {
  std::cout << title << "\n";
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      const auto pos = row_major ? sim::row_major_pos(r, c) : sim::col_major_pos(r, c);
      std::cout << std::setw(3) << pos.lane;
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Fig. 1: lane owning each element of an 8x8 half-precision matrix\n";
  std::cout << "(one 32-bit register per lane holds two adjacent elements)\n\n";
  print_layout("row-major order:", true);
  print_layout("column-major order:", false);

  std::cout << "Fig. 2: HMMA.1688.F16 R8, R2, R6, R4 computes D(16x8) = A(16x8)*B(8x8)+C:\n"
               "  D: R8 (rows 0-7, row-major) + R9 (rows 8-15)\n"
               "  A: R2 (rows 0-7, row-major) + R3 (rows 8-15)\n"
               "  B: R6 (column-major)\n"
               "  C: R4 + R5 (row-major)\n\n";

  // Disassemble the optimized kernel and show the top of the main loop.
  const auto cfg = core::HgemmConfig::optimized();
  const auto prog = core::hgemm_kernel(cfg, {256, 256, 128});
  std::cout << "optimized kernel '" << prog.name << "': " << prog.code.size()
            << " instructions, " << prog.num_regs << " registers, " << prog.smem_bytes / 1024
            << " KB shared memory, " << prog.cta_threads << " threads\n";
  const auto warnings = sass::lint(prog);
  std::cout << "scheduler lint: " << (warnings.empty() ? "clean" : "WARNINGS") << "\n\n";

  // Locate the loop body (first backward branch target) and print a window.
  int body = -1;
  for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
    if (prog.code[pc].op == sass::Opcode::kBra &&
        prog.code[pc].target < static_cast<std::int32_t>(pc)) {
      body = prog.code[pc].target;
      break;
    }
  }
  std::cout << "main loop body (first 28 instructions from pc " << body << "):\n";
  for (int pc = body; pc < body + 28 && pc < static_cast<int>(prog.code.size()); ++pc) {
    std::cout << "/*" << std::setw(4) << pc << "*/  "
              << prog.code[static_cast<std::size_t>(pc)].to_string() << "\n";
  }

  std::cout << "\ninstruction mix of the whole kernel:\n";
  int hmma = 0, lds = 0, sts = 0, ldg = 0, stg = 0, other = 0;
  for (const auto& inst : prog.code) {
    switch (inst.op) {
      case sass::Opcode::kHmma1688F16: ++hmma; break;
      case sass::Opcode::kLds: ++lds; break;
      case sass::Opcode::kSts: ++sts; break;
      case sass::Opcode::kLdg: ++ldg; break;
      case sass::Opcode::kStg: ++stg; break;
      default: ++other; break;
    }
  }
  std::cout << "  HMMA " << hmma << ", LDS " << lds << ", STS " << sts << ", LDG " << ldg
            << ", STG " << stg << ", other " << other << "\n";
  return 0;
}
