#!/usr/bin/env bash
# Full local gate: tier-1 build + tests, then an ASan/UBSan build of the same
# tests (-DTC_SANITIZE=ON) to catch memory and UB bugs the release build
# hides. Bench smoke runs ride along via their bench_smoke CTest label.
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # tier-1 only, skip the sanitizer build
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: release build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== schedule checks: kernel hazard scan + fuzz smoke + device/L2 xval =="
./build/examples/tcgemm_cli check
# -L takes a regex; two -L flags would AND the labels and select nothing.
# l2_xval cross-validates the reuse-distance sampler against the timed
# device's emergent sector-cache hit rate for every launch order.
ctest --test-dir build --output-on-failure -L "fuzz_smoke|device_xval|l2_xval"

echo "== jit gate: differential layer + compiled-engine CLI smoke =="
# jit_smoke carries the JIT-vs-interpreter differential layer (1000-seed
# engine-axis fuzz in both numerics modes, per-pass translation validation,
# regression vectors). The CLI passes then drive the compiled engine end to
# end: run --engine jit must match the reference bitwise in both numerics
# modes, and fuzz --engine jit must report zero divergences.
ctest --test-dir build --output-on-failure -L "jit_smoke" -j "$JOBS"
./build/examples/tcgemm_cli run --m 64 --n 64 --k 64 --engine jit --check >/dev/null
./build/examples/tcgemm_cli run --m 64 --n 64 --k 64 --engine jit \
  --numerics bitaccurate --check >/dev/null
./build/examples/tcgemm_cli fuzz --engine jit --programs 200 >/dev/null

echo "== numerics gate: HMMA conformance suite + executor-vs-engine check =="
# numerics_smoke carries the bit-accurate HMMA conformance suite (SMT-model
# vectors, long-double oracle properties, golden error curves, executor e2e
# bitwise match). The CLI passes then drive the executor against the engine
# in bit-accurate mode and emit the error-vs-k curves end to end.
ctest --test-dir build --output-on-failure -L "numerics_smoke" -j "$JOBS"
./build/examples/tcgemm_cli run --m 64 --n 64 --k 64 --numerics bitaccurate --check >/dev/null
./build/examples/tcgemm_cli numerics --k 256 >/dev/null

echo "== tuner smoke: ranked search on both specs + regression labels =="
# Small-budget end-to-end search on each device: every evaluated kernel is
# hard-gated through sass::validate + check::find_hazards inside the tuner,
# so a non-zero exit means the search or a generated kernel regressed. The
# deeper determinism/baseline suite runs under the tune_smoke CTest label.
for dev in rtx2070 t4; do
  ./build/examples/tcgemm_cli tune --device "$dev" --budget 6 >/dev/null
done
ctest --test-dir build --output-on-failure -L "tune_smoke|examples_smoke" -j "$JOBS"

echo "== serve smoke: seeded traffic + persistent cache on both specs =="
# The serve_smoke CTest label runs the serving-layer suite (warm-cache
# zero-retune guarantee, hit rate >= 90% after warmup, zero hazard diags,
# bitwise metrics determinism across host threads). The CLI pass below then
# drives the same stack end to end on each device: a cold run populates a
# fresh persistent cache, the warm rerun must answer every bucket from it.
ctest --test-dir build --output-on-failure -L "serve_smoke" -j "$JOBS"
for dev in rtx2070 t4; do
  cache="build/serve_cache_${dev}.json"
  rm -f "$cache"
  ./build/examples/tcgemm_cli serve --device "$dev" --requests 30 --budget 2 \
    --cache "$cache" >/dev/null
  ./build/examples/tcgemm_cli serve --device "$dev" --requests 30 --budget 2 \
    --cache "$cache" | grep -q "0 tune evals" \
    || { echo "warm serve re-tuned on $dev"; exit 1; }
  rm -f "$cache"
done

echo "== op smoke: GemmOp lowering/exec suite + CLI bitwise plan check =="
# op_smoke carries the operation-graph suite (lowering rules, batched/
# split-K/epilogue execution bitwise vs the op reference, serve batch-axis
# and metrics behavior, cache round-trip, split-K tuner win on both specs).
# The CLI pass then lowers a batched split-K bias+GELU op end to end and
# verifies the multi-kernel plan's output bitwise against gemm_op_ref.
ctest --test-dir build --output-on-failure -L "op_smoke" -j "$JOBS"
./build/examples/tcgemm_cli op --m 96 --n 80 --k 200 --batch 2 --split-k 4 \
  --alpha 1.25 --beta 0.5 --bias --act gelu --check >/dev/null

echo "== scheduler gate: virtual emission -> schedule -> hazard oracle =="
# `schedule` re-schedules each kernel from its virtual (latency-agnostic)
# form and hard-verifies the result through check::find_hazards — a non-zero
# exit means the automatic scheduler regressed. The full config-ablation
# sweep (layouts, interleave, prefetch, warp tiles) runs in tier-1 as the
# SchedKernelGen.* tests; this exercises the headline kernels on both device
# timing models.
for dev in rtx2070 t4; do
  ./build/examples/tcgemm_cli schedule --device "$dev" >/dev/null
  ./build/examples/tcgemm_cli schedule --baseline --device "$dev" >/dev/null
  ./build/examples/tcgemm_cli schedule --wmma --device "$dev" >/dev/null
done

if [[ "$FAST" == 1 ]]; then
  echo "== done (fast mode: sanitizer build skipped) =="
  exit 0
fi

echo "== sanitizers: ASan+UBSan build + ctest =="
cmake -B build-asan -S . -DTC_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"
# halt_on_error so UBSan findings fail the run instead of scrolling past.
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=0 \
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== all checks passed =="
