# Empty dependencies file for lib_microbench.
# This may be replaced when dependencies are built.
