file(REMOVE_RECURSE
  "CMakeFiles/lib_microbench.dir/lib_microbench.cpp.o"
  "CMakeFiles/lib_microbench.dir/lib_microbench.cpp.o.d"
  "lib_microbench"
  "lib_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lib_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
