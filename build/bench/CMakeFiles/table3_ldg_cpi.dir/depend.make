# Empty dependencies file for table3_ldg_cpi.
# This may be replaced when dependencies are built.
