file(REMOVE_RECURSE
  "CMakeFiles/table3_ldg_cpi.dir/table3_ldg_cpi.cpp.o"
  "CMakeFiles/table3_ldg_cpi.dir/table3_ldg_cpi.cpp.o.d"
  "table3_ldg_cpi"
  "table3_ldg_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ldg_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
