# Empty compiler generated dependencies file for fig5_smem_padding.
# This may be replaced when dependencies are built.
