file(REMOVE_RECURSE
  "CMakeFiles/fig5_smem_padding.dir/fig5_smem_padding.cpp.o"
  "CMakeFiles/fig5_smem_padding.dir/fig5_smem_padding.cpp.o.d"
  "fig5_smem_padding"
  "fig5_smem_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_smem_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
