file(REMOVE_RECURSE
  "CMakeFiles/table1_hmma.dir/table1_hmma.cpp.o"
  "CMakeFiles/table1_hmma.dir/table1_hmma.cpp.o.d"
  "table1_hmma"
  "table1_hmma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hmma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
