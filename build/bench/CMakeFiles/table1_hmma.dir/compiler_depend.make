# Empty compiler generated dependencies file for table1_hmma.
# This may be replaced when dependencies are built.
