file(REMOVE_RECURSE
  "CMakeFiles/table4_smem.dir/table4_smem.cpp.o"
  "CMakeFiles/table4_smem.dir/table4_smem.cpp.o.d"
  "table4_smem"
  "table4_smem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_smem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
