# Empty dependencies file for table4_smem.
# This may be replaced when dependencies are built.
