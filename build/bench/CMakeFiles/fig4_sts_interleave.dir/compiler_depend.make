# Empty compiler generated dependencies file for fig4_sts_interleave.
# This may be replaced when dependencies are built.
