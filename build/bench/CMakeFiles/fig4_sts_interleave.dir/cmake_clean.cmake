file(REMOVE_RECURSE
  "CMakeFiles/fig4_sts_interleave.dir/fig4_sts_interleave.cpp.o"
  "CMakeFiles/fig4_sts_interleave.dir/fig4_sts_interleave.cpp.o.d"
  "fig4_sts_interleave"
  "fig4_sts_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sts_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
