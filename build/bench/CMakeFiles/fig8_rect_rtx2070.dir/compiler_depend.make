# Empty compiler generated dependencies file for fig8_rect_rtx2070.
# This may be replaced when dependencies are built.
