file(REMOVE_RECURSE
  "CMakeFiles/fig8_rect_rtx2070.dir/fig8_rect_rtx2070.cpp.o"
  "CMakeFiles/fig8_rect_rtx2070.dir/fig8_rect_rtx2070.cpp.o.d"
  "fig8_rect_rtx2070"
  "fig8_rect_rtx2070.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rect_rtx2070.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
