file(REMOVE_RECURSE
  "CMakeFiles/fig6_square_rtx2070.dir/fig6_square_rtx2070.cpp.o"
  "CMakeFiles/fig6_square_rtx2070.dir/fig6_square_rtx2070.cpp.o.d"
  "fig6_square_rtx2070"
  "fig6_square_rtx2070.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_square_rtx2070.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
