# Empty dependencies file for fig6_square_rtx2070.
# This may be replaced when dependencies are built.
