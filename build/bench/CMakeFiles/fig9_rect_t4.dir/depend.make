# Empty dependencies file for fig9_rect_t4.
# This may be replaced when dependencies are built.
