file(REMOVE_RECURSE
  "CMakeFiles/fig9_rect_t4.dir/fig9_rect_t4.cpp.o"
  "CMakeFiles/fig9_rect_t4.dir/fig9_rect_t4.cpp.o.d"
  "fig9_rect_t4"
  "fig9_rect_t4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_rect_t4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
