file(REMOVE_RECURSE
  "CMakeFiles/fig7_square_t4.dir/fig7_square_t4.cpp.o"
  "CMakeFiles/fig7_square_t4.dir/fig7_square_t4.cpp.o.d"
  "fig7_square_t4"
  "fig7_square_t4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_square_t4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
