# Empty dependencies file for fig7_square_t4.
# This may be replaced when dependencies are built.
