file(REMOVE_RECURSE
  "CMakeFiles/table2_membw.dir/table2_membw.cpp.o"
  "CMakeFiles/table2_membw.dir/table2_membw.cpp.o.d"
  "table2_membw"
  "table2_membw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_membw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
