# Empty compiler generated dependencies file for table2_membw.
# This may be replaced when dependencies are built.
