file(REMOVE_RECURSE
  "CMakeFiles/table6_blocking.dir/table6_blocking.cpp.o"
  "CMakeFiles/table6_blocking.dir/table6_blocking.cpp.o.d"
  "table6_blocking"
  "table6_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
