# Empty dependencies file for table6_blocking.
# This may be replaced when dependencies are built.
