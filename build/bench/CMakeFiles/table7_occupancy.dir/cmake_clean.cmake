file(REMOVE_RECURSE
  "CMakeFiles/table7_occupancy.dir/table7_occupancy.cpp.o"
  "CMakeFiles/table7_occupancy.dir/table7_occupancy.cpp.o.d"
  "table7_occupancy"
  "table7_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
