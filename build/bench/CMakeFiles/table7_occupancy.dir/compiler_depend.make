# Empty compiler generated dependencies file for table7_occupancy.
# This may be replaced when dependencies are built.
