# Empty dependencies file for attention_projection.
# This may be replaced when dependencies are built.
