file(REMOVE_RECURSE
  "CMakeFiles/attention_projection.dir/attention_projection.cpp.o"
  "CMakeFiles/attention_projection.dir/attention_projection.cpp.o.d"
  "attention_projection"
  "attention_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
