# Empty dependencies file for tcgemm_cli.
# This may be replaced when dependencies are built.
