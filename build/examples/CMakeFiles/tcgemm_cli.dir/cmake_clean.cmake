file(REMOVE_RECURSE
  "CMakeFiles/tcgemm_cli.dir/tcgemm_cli.cpp.o"
  "CMakeFiles/tcgemm_cli.dir/tcgemm_cli.cpp.o.d"
  "tcgemm_cli"
  "tcgemm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcgemm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
