
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/tc_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/tc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/tc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sass/CMakeFiles/tc_sass.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
