# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_half[1]_include.cmake")
include("/root/repo/build/tests/test_sass[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_mma_layout[1]_include.cmake")
include("/root/repo/build/tests/test_functional[1]_include.cmake")
include("/root/repo/build/tests/test_micro[1]_include.cmake")
include("/root/repo/build/tests/test_timed_hgemm[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_axpby[1]_include.cmake")
include("/root/repo/build/tests/test_asm[1]_include.cmake")
include("/root/repo/build/tests/test_exec_ops[1]_include.cmake")
include("/root/repo/build/tests/test_scheduling[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_bandwidth[1]_include.cmake")
