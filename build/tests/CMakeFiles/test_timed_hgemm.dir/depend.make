# Empty dependencies file for test_timed_hgemm.
# This may be replaced when dependencies are built.
