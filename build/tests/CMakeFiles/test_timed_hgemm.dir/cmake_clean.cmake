file(REMOVE_RECURSE
  "CMakeFiles/test_timed_hgemm.dir/test_timed_hgemm.cpp.o"
  "CMakeFiles/test_timed_hgemm.dir/test_timed_hgemm.cpp.o.d"
  "test_timed_hgemm"
  "test_timed_hgemm.pdb"
  "test_timed_hgemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timed_hgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
