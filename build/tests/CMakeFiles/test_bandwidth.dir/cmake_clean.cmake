file(REMOVE_RECURSE
  "CMakeFiles/test_bandwidth.dir/test_bandwidth.cpp.o"
  "CMakeFiles/test_bandwidth.dir/test_bandwidth.cpp.o.d"
  "test_bandwidth"
  "test_bandwidth.pdb"
  "test_bandwidth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
