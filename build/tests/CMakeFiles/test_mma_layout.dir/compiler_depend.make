# Empty compiler generated dependencies file for test_mma_layout.
# This may be replaced when dependencies are built.
