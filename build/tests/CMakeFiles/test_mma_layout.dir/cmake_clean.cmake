file(REMOVE_RECURSE
  "CMakeFiles/test_mma_layout.dir/test_mma_layout.cpp.o"
  "CMakeFiles/test_mma_layout.dir/test_mma_layout.cpp.o.d"
  "test_mma_layout"
  "test_mma_layout.pdb"
  "test_mma_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mma_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
