file(REMOVE_RECURSE
  "CMakeFiles/test_exec_ops.dir/test_exec_ops.cpp.o"
  "CMakeFiles/test_exec_ops.dir/test_exec_ops.cpp.o.d"
  "test_exec_ops"
  "test_exec_ops.pdb"
  "test_exec_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
