# Empty dependencies file for test_exec_ops.
# This may be replaced when dependencies are built.
