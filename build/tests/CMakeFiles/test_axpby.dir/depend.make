# Empty dependencies file for test_axpby.
# This may be replaced when dependencies are built.
