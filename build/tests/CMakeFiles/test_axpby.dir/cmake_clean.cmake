file(REMOVE_RECURSE
  "CMakeFiles/test_axpby.dir/test_axpby.cpp.o"
  "CMakeFiles/test_axpby.dir/test_axpby.cpp.o.d"
  "test_axpby"
  "test_axpby.pdb"
  "test_axpby[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_axpby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
