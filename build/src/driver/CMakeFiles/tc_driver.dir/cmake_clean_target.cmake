file(REMOVE_RECURSE
  "libtc_driver.a"
)
