file(REMOVE_RECURSE
  "CMakeFiles/tc_driver.dir/device.cpp.o"
  "CMakeFiles/tc_driver.dir/device.cpp.o.d"
  "libtc_driver.a"
  "libtc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
