# Empty compiler generated dependencies file for tc_driver.
# This may be replaced when dependencies are built.
