# Empty dependencies file for tc_device.
# This may be replaced when dependencies are built.
