file(REMOVE_RECURSE
  "CMakeFiles/tc_device.dir/occupancy.cpp.o"
  "CMakeFiles/tc_device.dir/occupancy.cpp.o.d"
  "CMakeFiles/tc_device.dir/spec.cpp.o"
  "CMakeFiles/tc_device.dir/spec.cpp.o.d"
  "libtc_device.a"
  "libtc_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
