
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/occupancy.cpp" "src/device/CMakeFiles/tc_device.dir/occupancy.cpp.o" "gcc" "src/device/CMakeFiles/tc_device.dir/occupancy.cpp.o.d"
  "/root/repo/src/device/spec.cpp" "src/device/CMakeFiles/tc_device.dir/spec.cpp.o" "gcc" "src/device/CMakeFiles/tc_device.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sass/CMakeFiles/tc_sass.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
