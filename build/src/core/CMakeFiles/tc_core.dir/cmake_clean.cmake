file(REMOVE_RECURSE
  "CMakeFiles/tc_core.dir/hgemm.cpp.o"
  "CMakeFiles/tc_core.dir/hgemm.cpp.o.d"
  "CMakeFiles/tc_core.dir/kernel_gen.cpp.o"
  "CMakeFiles/tc_core.dir/kernel_gen.cpp.o.d"
  "CMakeFiles/tc_core.dir/reference.cpp.o"
  "CMakeFiles/tc_core.dir/reference.cpp.o.d"
  "libtc_core.a"
  "libtc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
