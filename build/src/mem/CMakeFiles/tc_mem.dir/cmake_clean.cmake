file(REMOVE_RECURSE
  "CMakeFiles/tc_mem.dir/banked_smem.cpp.o"
  "CMakeFiles/tc_mem.dir/banked_smem.cpp.o.d"
  "CMakeFiles/tc_mem.dir/coalescer.cpp.o"
  "CMakeFiles/tc_mem.dir/coalescer.cpp.o.d"
  "CMakeFiles/tc_mem.dir/global_mem.cpp.o"
  "CMakeFiles/tc_mem.dir/global_mem.cpp.o.d"
  "CMakeFiles/tc_mem.dir/sector_cache.cpp.o"
  "CMakeFiles/tc_mem.dir/sector_cache.cpp.o.d"
  "libtc_mem.a"
  "libtc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
