file(REMOVE_RECURSE
  "libtc_mem.a"
)
