# Empty compiler generated dependencies file for tc_mem.
# This may be replaced when dependencies are built.
