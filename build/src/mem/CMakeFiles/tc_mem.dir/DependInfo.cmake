
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/banked_smem.cpp" "src/mem/CMakeFiles/tc_mem.dir/banked_smem.cpp.o" "gcc" "src/mem/CMakeFiles/tc_mem.dir/banked_smem.cpp.o.d"
  "/root/repo/src/mem/coalescer.cpp" "src/mem/CMakeFiles/tc_mem.dir/coalescer.cpp.o" "gcc" "src/mem/CMakeFiles/tc_mem.dir/coalescer.cpp.o.d"
  "/root/repo/src/mem/global_mem.cpp" "src/mem/CMakeFiles/tc_mem.dir/global_mem.cpp.o" "gcc" "src/mem/CMakeFiles/tc_mem.dir/global_mem.cpp.o.d"
  "/root/repo/src/mem/sector_cache.cpp" "src/mem/CMakeFiles/tc_mem.dir/sector_cache.cpp.o" "gcc" "src/mem/CMakeFiles/tc_mem.dir/sector_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sass/CMakeFiles/tc_sass.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
