file(REMOVE_RECURSE
  "CMakeFiles/tc_model.dir/blocking.cpp.o"
  "CMakeFiles/tc_model.dir/blocking.cpp.o.d"
  "CMakeFiles/tc_model.dir/l2_reuse.cpp.o"
  "CMakeFiles/tc_model.dir/l2_reuse.cpp.o.d"
  "CMakeFiles/tc_model.dir/roofline.cpp.o"
  "CMakeFiles/tc_model.dir/roofline.cpp.o.d"
  "CMakeFiles/tc_model.dir/wave_perf.cpp.o"
  "CMakeFiles/tc_model.dir/wave_perf.cpp.o.d"
  "libtc_model.a"
  "libtc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
