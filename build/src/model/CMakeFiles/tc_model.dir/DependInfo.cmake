
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/blocking.cpp" "src/model/CMakeFiles/tc_model.dir/blocking.cpp.o" "gcc" "src/model/CMakeFiles/tc_model.dir/blocking.cpp.o.d"
  "/root/repo/src/model/l2_reuse.cpp" "src/model/CMakeFiles/tc_model.dir/l2_reuse.cpp.o" "gcc" "src/model/CMakeFiles/tc_model.dir/l2_reuse.cpp.o.d"
  "/root/repo/src/model/roofline.cpp" "src/model/CMakeFiles/tc_model.dir/roofline.cpp.o" "gcc" "src/model/CMakeFiles/tc_model.dir/roofline.cpp.o.d"
  "/root/repo/src/model/wave_perf.cpp" "src/model/CMakeFiles/tc_model.dir/wave_perf.cpp.o" "gcc" "src/model/CMakeFiles/tc_model.dir/wave_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/tc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sass/CMakeFiles/tc_sass.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
