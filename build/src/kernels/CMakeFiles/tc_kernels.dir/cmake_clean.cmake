file(REMOVE_RECURSE
  "CMakeFiles/tc_kernels.dir/micro.cpp.o"
  "CMakeFiles/tc_kernels.dir/micro.cpp.o.d"
  "libtc_kernels.a"
  "libtc_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
