# Empty compiler generated dependencies file for tc_kernels.
# This may be replaced when dependencies are built.
