file(REMOVE_RECURSE
  "libtc_kernels.a"
)
