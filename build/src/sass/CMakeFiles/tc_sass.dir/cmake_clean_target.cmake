file(REMOVE_RECURSE
  "libtc_sass.a"
)
