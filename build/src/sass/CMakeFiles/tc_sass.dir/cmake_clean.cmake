file(REMOVE_RECURSE
  "CMakeFiles/tc_sass.dir/asm_parser.cpp.o"
  "CMakeFiles/tc_sass.dir/asm_parser.cpp.o.d"
  "CMakeFiles/tc_sass.dir/builder.cpp.o"
  "CMakeFiles/tc_sass.dir/builder.cpp.o.d"
  "CMakeFiles/tc_sass.dir/disasm.cpp.o"
  "CMakeFiles/tc_sass.dir/disasm.cpp.o.d"
  "CMakeFiles/tc_sass.dir/isa.cpp.o"
  "CMakeFiles/tc_sass.dir/isa.cpp.o.d"
  "CMakeFiles/tc_sass.dir/validator.cpp.o"
  "CMakeFiles/tc_sass.dir/validator.cpp.o.d"
  "libtc_sass.a"
  "libtc_sass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_sass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
