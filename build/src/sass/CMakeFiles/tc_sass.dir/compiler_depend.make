# Empty compiler generated dependencies file for tc_sass.
# This may be replaced when dependencies are built.
