
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sass/asm_parser.cpp" "src/sass/CMakeFiles/tc_sass.dir/asm_parser.cpp.o" "gcc" "src/sass/CMakeFiles/tc_sass.dir/asm_parser.cpp.o.d"
  "/root/repo/src/sass/builder.cpp" "src/sass/CMakeFiles/tc_sass.dir/builder.cpp.o" "gcc" "src/sass/CMakeFiles/tc_sass.dir/builder.cpp.o.d"
  "/root/repo/src/sass/disasm.cpp" "src/sass/CMakeFiles/tc_sass.dir/disasm.cpp.o" "gcc" "src/sass/CMakeFiles/tc_sass.dir/disasm.cpp.o.d"
  "/root/repo/src/sass/isa.cpp" "src/sass/CMakeFiles/tc_sass.dir/isa.cpp.o" "gcc" "src/sass/CMakeFiles/tc_sass.dir/isa.cpp.o.d"
  "/root/repo/src/sass/validator.cpp" "src/sass/CMakeFiles/tc_sass.dir/validator.cpp.o" "gcc" "src/sass/CMakeFiles/tc_sass.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
