file(REMOVE_RECURSE
  "CMakeFiles/tc_common.dir/half.cpp.o"
  "CMakeFiles/tc_common.dir/half.cpp.o.d"
  "CMakeFiles/tc_common.dir/rng.cpp.o"
  "CMakeFiles/tc_common.dir/rng.cpp.o.d"
  "CMakeFiles/tc_common.dir/table.cpp.o"
  "CMakeFiles/tc_common.dir/table.cpp.o.d"
  "libtc_common.a"
  "libtc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
