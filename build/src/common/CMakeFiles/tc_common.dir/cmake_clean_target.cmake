file(REMOVE_RECURSE
  "libtc_common.a"
)
