file(REMOVE_RECURSE
  "CMakeFiles/tc_sim.dir/exec_core.cpp.o"
  "CMakeFiles/tc_sim.dir/exec_core.cpp.o.d"
  "CMakeFiles/tc_sim.dir/functional.cpp.o"
  "CMakeFiles/tc_sim.dir/functional.cpp.o.d"
  "CMakeFiles/tc_sim.dir/mma_exec.cpp.o"
  "CMakeFiles/tc_sim.dir/mma_exec.cpp.o.d"
  "CMakeFiles/tc_sim.dir/pipes.cpp.o"
  "CMakeFiles/tc_sim.dir/pipes.cpp.o.d"
  "CMakeFiles/tc_sim.dir/reg_file.cpp.o"
  "CMakeFiles/tc_sim.dir/reg_file.cpp.o.d"
  "CMakeFiles/tc_sim.dir/timed_sm.cpp.o"
  "CMakeFiles/tc_sim.dir/timed_sm.cpp.o.d"
  "libtc_sim.a"
  "libtc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
