
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/exec_core.cpp" "src/sim/CMakeFiles/tc_sim.dir/exec_core.cpp.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/exec_core.cpp.o.d"
  "/root/repo/src/sim/functional.cpp" "src/sim/CMakeFiles/tc_sim.dir/functional.cpp.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/functional.cpp.o.d"
  "/root/repo/src/sim/mma_exec.cpp" "src/sim/CMakeFiles/tc_sim.dir/mma_exec.cpp.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/mma_exec.cpp.o.d"
  "/root/repo/src/sim/pipes.cpp" "src/sim/CMakeFiles/tc_sim.dir/pipes.cpp.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/pipes.cpp.o.d"
  "/root/repo/src/sim/reg_file.cpp" "src/sim/CMakeFiles/tc_sim.dir/reg_file.cpp.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/reg_file.cpp.o.d"
  "/root/repo/src/sim/timed_sm.cpp" "src/sim/CMakeFiles/tc_sim.dir/timed_sm.cpp.o" "gcc" "src/sim/CMakeFiles/tc_sim.dir/timed_sm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sass/CMakeFiles/tc_sass.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/tc_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
